//! Simulator errors.

/// Errors raised while building or solving a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An element referenced a node that was never created.
    UnknownNode(usize),
    /// An element parameter was non-positive or non-finite.
    InvalidParameter {
        /// Which element family.
        element: &'static str,
        /// Which parameter.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The circuit has no nodes besides ground.
    EmptyCircuit,
    /// Newton iteration failed to converge at a timestep.
    NoConvergence {
        /// Simulation time at the failure, seconds.
        time: f64,
    },
    /// The linear solver hit a (numerically) singular matrix — usually
    /// a floating node.
    SingularMatrix {
        /// Simulation time at the failure, seconds.
        time: f64,
    },
    /// A probe, search or characterization run could not produce a
    /// verdict: the circuit already misbehaves at its nominal point, or
    /// every retry of a trial failed. Unlike [`SimError::NoConvergence`]
    /// this is a *protocol*-level outcome — the transient itself may
    /// have finished fine — and callers performing sweeps are expected
    /// to record it and keep going rather than abort.
    NonConvergent {
        /// What failed to converge (human-readable, static).
        what: &'static str,
    },
    /// The run's execution budget (wall-clock deadline or step/Newton
    /// cap from an ambient [`sfq_guard::RunBudget`]) ran out before
    /// `t_end`. Retryable: a relaxed retry or the closed-form
    /// estimator can stand in for the lost transient.
    BudgetExceeded {
        /// Which limit tripped (`deadline`, `step_budget`,
        /// `newton_budget`).
        what: &'static str,
        /// Simulation time reached before the stop, seconds.
        time: f64,
    },
    /// The run's [`sfq_guard::CancelToken`] was triggered. Not
    /// retryable: the caller asked the whole computation to stop.
    Cancelled {
        /// Simulation time reached before the stop, seconds.
        time: f64,
    },
}

impl SimError {
    /// True for budget stops that a retry (with relaxed solver
    /// settings) or a degraded closed-form fallback may recover from.
    /// Cancellation is *not* retryable — it propagates.
    #[must_use]
    pub fn is_budget(&self) -> bool {
        matches!(self, SimError::BudgetExceeded { .. })
    }

    /// True when the run stopped because its cancel token fired.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        matches!(self, SimError::Cancelled { .. })
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownNode(n) => write!(f, "element references unknown node {n}"),
            SimError::InvalidParameter {
                element,
                field,
                value,
            } => write!(f, "invalid {element} parameter {field} = {value}"),
            SimError::EmptyCircuit => f.write_str("circuit has no nodes"),
            SimError::NoConvergence { time } => {
                write!(f, "newton iteration failed to converge at t = {time:e} s")
            }
            SimError::SingularMatrix { time } => {
                write!(
                    f,
                    "singular conductance matrix at t = {time:e} s (floating node?)"
                )
            }
            SimError::NonConvergent { what } => {
                write!(f, "non-convergent probe: {what}")
            }
            SimError::BudgetExceeded { what, time } => {
                write!(f, "execution budget exceeded ({what}) at t = {time:e} s")
            }
            SimError::Cancelled { time } => {
                write!(f, "run cancelled at t = {time:e} s")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_detail() {
        assert!(SimError::UnknownNode(7).to_string().contains('7'));
        assert!(SimError::NoConvergence { time: 1e-12 }
            .to_string()
            .contains("converge"));
    }
}
