//! # jjsim
//!
//! A transient circuit simulator for superconducting single-flux-
//! quantum (SFQ) logic — this workspace's stand-in for JSIM, the
//! Josephson integrated-circuit simulator the SuperNPU paper uses to
//! characterize its cell library (§IV-A.1) and to compare network and
//! clocking alternatives (Figs. 5 and 7).
//!
//! Josephson junctions follow the resistively-and-capacitively-shunted
//! junction (RCSJ) model:
//!
//! ```text
//! i = I_c·sin(φ) + v/R + C·dv/dt,     dφ/dt = 2π·v/Φ₀
//! ```
//!
//! The solver performs modified nodal analysis with trapezoidal
//! integration and Newton iteration per timestep; inductors and
//! capacitors use standard companion models, so the whole system stays
//! a dense node-voltage problem that a small Gaussian elimination
//! handles comfortably for cell-scale circuits.
//!
//! An SFQ pulse is a 2π phase slip of a junction; [`SimResult`]
//! exposes per-junction phase-slip (pulse) times, which is how delays
//! and clock-rate limits are extracted.
//!
//! # Example: pulse propagation down a JTL
//!
//! ```
//! use jjsim::stdlib::{jtl_chain, JtlParams};
//! use jjsim::{Solver, SimOptions};
//!
//! let (circuit, probes) = jtl_chain(8, &JtlParams::default());
//! let result = Solver::new(circuit, SimOptions::default())
//!     .expect("valid circuit")
//!     .run(200e-12);
//! // The input pulse reaches the far end of the line:
//! assert_eq!(result.pulse_times(*probes.last().unwrap()).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod circuit;
mod error;
pub mod extract;
pub mod lanes;
mod linalg;
pub mod margins;
pub mod netlist;
mod solver;
pub mod stdlib;
mod waveform;

pub use batch::{batch_width, set_batch_width, BatchedTransient};
pub use circuit::{Circuit, ElementId, JjParams, NodeId};
pub use error::SimError;
pub use lanes::LANES;
pub use netlist::{parse_netlist, NetlistError, ParsedNetlist};
pub use solver::{transient_runs, SimOptions, SimResult, Solver, StepControl};
pub use waveform::Waveform;

/// Magnetic flux quantum Φ₀ in webers.
pub const PHI0: f64 = 2.067_833_848e-15;
