//! Property-based equivalence of lane-batched transient solving
//! against the scalar golden path: for K parameter-perturbed
//! `jtl_chain_40` instances, the batched run must reproduce the
//! scalar run's pulse counts exactly and its pulse times within the
//! BENCH_solver tolerance (0.5 ps) — including ragged K that pads or
//! splits lane groups (K ∈ {1, 3, 4, 13}) and forced mid-run lane
//! retirement, which must not disturb sibling lanes.

use jjsim::stdlib::{jtl_chain, JtlParams};
use jjsim::{BatchedTransient, SimOptions, Solver};
use proptest::prelude::*;

/// Batched pulse times may differ from scalar by at most this much.
const PULSE_TOL_PS: f64 = 0.5;
const N_STAGES: usize = 40;
const T_END: f64 = 200e-12;

/// Build K `jtl_chain_40` instances with critical currents spread
/// evenly across `1 ± spread/2`.
fn perturbed(k: usize, spread: f64) -> Vec<(jjsim::Circuit, Vec<jjsim::ElementId>)> {
    (0..k)
        .map(|i| {
            let frac = if k > 1 {
                i as f64 / (k - 1) as f64
            } else {
                0.5
            };
            let mut p = JtlParams::default();
            p.ic *= 1.0 - spread / 2.0 + spread * frac;
            jtl_chain(N_STAGES, &p)
        })
        .collect()
}

/// Assert every instance's batched pulses match its scalar run.
fn assert_matches_scalar(
    built: &[(jjsim::Circuit, Vec<jjsim::ElementId>)],
    batch: &BatchedTransient,
) {
    let opts = SimOptions::adaptive();
    let batched = batch.try_run(T_END);
    assert_eq!(batched.len(), built.len());
    for (i, ((ckt, stages), b)) in built.iter().zip(batched).enumerate() {
        let b = b.expect("batched run converges");
        let s = Solver::new(ckt.clone(), opts.clone())
            .expect("scalar solver builds")
            .try_run(T_END)
            .expect("scalar run converges");
        for &jj in stages {
            let (bt, st) = (b.pulse_times(jj), s.pulse_times(jj));
            assert_eq!(
                bt.len(),
                st.len(),
                "instance {i} pulse count diverged from scalar"
            );
            for (tb, ts) in bt.iter().zip(st) {
                let delta_ps = (tb - ts).abs() * 1e12;
                assert!(
                    delta_ps <= PULSE_TOL_PS,
                    "instance {i} pulse delta {delta_ps:.4} ps exceeds {PULSE_TOL_PS} ps"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Ragged batch sizes — a lone scalar tail (K=1), a padded group
    /// (K=3), a full group (K=4 = LANES), and full groups plus a
    /// padded remainder (K=13) — all reproduce the scalar pulses.
    #[test]
    fn batched_pulses_match_scalar_across_ragged_k(spread in 0.0f64..0.10) {
        jjsim::set_batch_width(Some(jjsim::LANES));
        let opts = SimOptions::adaptive();
        for &k in &[1usize, 3, 4, 13] {
            let built = perturbed(k, spread);
            let circuits = built.iter().map(|(c, _)| c.clone()).collect();
            let batch = BatchedTransient::new(circuits, opts.clone())
                .expect("perturbed instances share topology");
            assert_matches_scalar(&built, &batch);
        }
    }

    /// A forced mid-run Newton-failure retirement finishes the victim
    /// on the scalar path (so it trivially matches) and must leave
    /// every sibling lane's pulses untouched.
    #[test]
    fn forced_retirement_does_not_disturb_siblings(
        victim in 0usize..4,
        t_frac in 0.2f64..0.8,
    ) {
        jjsim::set_batch_width(Some(jjsim::LANES));
        let built = perturbed(4, 0.06);
        let circuits = built.iter().map(|(c, _)| c.clone()).collect();
        let mut batch = BatchedTransient::new(circuits, SimOptions::adaptive())
            .expect("perturbed instances share topology");
        batch.inject_newton_failure(victim, t_frac * T_END);
        assert_matches_scalar(&built, &batch);
    }
}
