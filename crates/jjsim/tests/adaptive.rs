//! Adaptive-vs-fixed equivalence over the stdlib cells.
//!
//! The adaptive controller's contract is behavioral equivalence at
//! the SFQ level: the *same pulses* (count-exact) at the *same times*
//! (within half a picosecond — five fixed-mode steps) for a fraction
//! of the steps. These tests enforce the contract across randomized
//! cell parameters, and pin the public margin searches (now backed by
//! adaptive probes) to the values the fixed-step solver measures.

use jjsim::margins::{self, find_margin};
use jjsim::stdlib::{
    clocked_and, dff, jtl_chain, shift_register, splitter, AndParams, DffParams, JtlParams,
};
use jjsim::{Circuit, ElementId, SimOptions, Solver};
use proptest::prelude::*;

const PULSE_TOL_S: f64 = 0.5e-12;

/// Run `build()`'s circuit in both modes and assert pulse equivalence
/// over `probes`.
fn assert_equivalent(build: &dyn Fn() -> Circuit, probes: &[ElementId], t_end: f64) {
    let fixed = Solver::new(build(), SimOptions::default())
        .expect("valid circuit")
        .try_run(t_end)
        .expect("fixed-step run converges");
    let adaptive = Solver::new(build(), SimOptions::adaptive())
        .expect("valid circuit")
        .try_run(t_end)
        .expect("adaptive run converges");
    for (k, &jj) in probes.iter().enumerate() {
        let f = fixed.pulse_times(jj);
        let a = adaptive.pulse_times(jj);
        assert_eq!(
            f.len(),
            a.len(),
            "probe {k}: adaptive pulse count {} != fixed {}",
            a.len(),
            f.len()
        );
        for (tf, ta) in f.iter().zip(a) {
            assert!(
                (tf - ta).abs() < PULSE_TOL_S,
                "probe {k}: pulse at {:.3} ps moved to {:.3} ps",
                tf * 1e12,
                ta * 1e12
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// JTL chains across their bias margin and a range of lengths.
    #[test]
    fn jtl_adaptive_equivalent(bias in 0.66f64..0.84, n in 3usize..9) {
        let p = JtlParams { bias_frac: bias, ..Default::default() };
        let (_, stages) = jtl_chain(n, &p);
        assert_equivalent(&|| jtl_chain(n, &p).0, &stages, 60e-12 + 40e-12 * n as f64);
    }

    /// DFF store-and-release across its readout-bias margin, plus the
    /// clock-without-data quiet case.
    #[test]
    fn dff_adaptive_equivalent(bias in 0.40e-4f64..0.62e-4) {
        let p = DffParams { bias_out: bias, ..Default::default() };
        let (_, pr) = dff(&[60e-12], &[100e-12], &p);
        assert_equivalent(
            &|| dff(&[60e-12], &[100e-12], &p).0,
            &[pr.input, pr.output, pr.forward],
            170e-12,
        );
        let (_, pr) = dff(&[], &[100e-12], &p);
        assert_equivalent(&|| dff(&[], &[100e-12], &p).0, &[pr.output], 170e-12);
    }

    /// Clocked AND over all four input combinations.
    #[test]
    fn and_adaptive_equivalent(case in 0usize..4) {
        let p = AndParams::default();
        let a: &[f64] = if case & 1 != 0 { &[60e-12] } else { &[] };
        let b: &[f64] = if case & 2 != 0 { &[60e-12] } else { &[] };
        let (_, pr) = clocked_and(a, b, &[100e-12], &p);
        assert_equivalent(
            &|| clocked_and(a, b, &[100e-12], &p).0,
            &[pr.store_a, pr.store_b, pr.output],
            170e-12,
        );
    }
}

/// Splitter and a 3-stage shift register, fixed parameters (their
/// testbenches have no free knob worth randomizing).
#[test]
fn splitter_and_shift_register_adaptive_equivalent() {
    let p = JtlParams::default();
    let (_, pr) = splitter(&p);
    assert_equivalent(&|| splitter(&p).0, &[pr.input, pr.out_a, pr.out_b], 140e-12);

    let dp = DffParams::default();
    let clocks = [100e-12, 140e-12, 180e-12];
    let (_, pr) = shift_register(3, 60e-12, &clocks, 0.0, &dp);
    assert_equivalent(
        &|| shift_register(3, 60e-12, &clocks, 0.0, &dp).0,
        &pr.stage_outputs,
        240e-12,
    );
}

/// Adaptive mode must actually pay for itself: a several-fold step
/// reduction on the mostly-quiescent characterization testbenches.
#[test]
fn adaptive_reduces_steps_at_least_3x_on_cells() {
    let p = JtlParams::default();
    let run = |opts: SimOptions| {
        Solver::new(jtl_chain(8, &p).0, opts)
            .unwrap()
            .try_run(380e-12)
            .unwrap()
            .accepted_steps
    };
    let fixed = run(SimOptions::default());
    let adaptive = run(SimOptions::adaptive());
    assert!(
        adaptive * 3 <= fixed,
        "adaptive {adaptive} steps vs fixed {fixed}"
    );
}

/// The public margin searches are backed by adaptive probes and a
/// process-wide memo; their results must be *identical* (not merely
/// close) to a fixed-step search, because every probe's boolean
/// outcome — pulse counts — is preserved exactly by the controller.
#[test]
fn margins_unchanged_by_adaptive_probes() {
    margins::clear_probe_cache();

    let jtl_fixed = find_margin(0.72, 0.5, 6, |bias| {
        let p = JtlParams {
            bias_frac: bias,
            ..Default::default()
        };
        let (ckt, stages) = jtl_chain(4, &p);
        let out = Solver::new(ckt, SimOptions::default())?.try_run(200e-12)?;
        Ok(stages.iter().all(|j| out.pulse_count(*j) == 1))
    })
    .expect("fixed-step margin converges");
    let jtl_adaptive = margins::jtl_bias_margin().expect("adaptive margin converges");
    assert_eq!(jtl_fixed, jtl_adaptive);

    let dff_fixed = find_margin(0.5e-4, 0.6, 6, |bias| {
        let p = DffParams {
            bias_out: bias,
            ..Default::default()
        };
        let (ckt, probes) = dff(&[60e-12], &[100e-12], &p);
        let out = Solver::new(ckt, SimOptions::default())?.try_run(160e-12)?;
        let stores = out.pulse_count(probes.input) == 1 && out.pulse_count(probes.output) == 1;
        let (ckt, probes) = dff(&[], &[100e-12], &p);
        let out = Solver::new(ckt, SimOptions::default())?.try_run(160e-12)?;
        let quiet = out.pulse_count(probes.output) == 0;
        Ok(stores && quiet)
    })
    .expect("fixed-step margin converges");
    let dff_adaptive = margins::dff_bias_margin().expect("adaptive margin converges");
    assert_eq!(dff_fixed, dff_adaptive);
}
