//! Property-based tests of the circuit solver's numerical core and
//! physical invariants.

use jjsim::stdlib::{jtl_chain, JtlParams};
use jjsim::{Circuit, JjParams, NodeId, SimOptions, Solver, Waveform};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Waveforms are bounded by their amplitude.
    #[test]
    fn gaussian_bounded(t0 in 0.0..1e-9, sigma in 1e-13..1e-11, amp in 1e-6..1e-3, t in 0.0..2e-9) {
        let w = Waveform::Gaussian { t0, sigma, amplitude: amp };
        let v = w.value(t);
        prop_assert!(v >= 0.0 && v <= amp * (1.0 + 1e-12));
    }

    /// Ramp is monotone and clamped.
    #[test]
    fn ramp_monotone(t0 in 0.0..1e-10, rise in 1e-12..1e-10, amp in 1e-6..1e-3) {
        let w = Waveform::Ramp { t0, rise, amplitude: amp };
        let mut prev = -1.0;
        for k in 0..50 {
            let v = w.value(t0 + rise * k as f64 / 25.0);
            prop_assert!(v >= prev);
            prop_assert!(v <= amp);
            prev = v;
        }
    }

    /// Critically-damped junction construction always yields βc ≈ 1.
    #[test]
    fn beta_c_is_one(ic in 1e-5..1e-3) {
        let p = JjParams::critically_damped(ic);
        prop_assert!((p.beta_c() - 1.0).abs() < 1e-6);
    }

    /// Passive linear RC networks never show phantom dissipation in
    /// excess of the source input: a DC-driven RC settles to V = IR
    /// regardless of parameters.
    #[test]
    fn rc_settles(r in 0.5f64..10.0, c in 1e-13..2e-12, i in 1e-5..1e-3) {
        let mut ckt = Circuit::new();
        let n = ckt.node();
        ckt.add_resistor(n, NodeId::GROUND, r).unwrap();
        ckt.add_capacitor(n, NodeId::GROUND, c).unwrap();
        ckt.add_source(n, Waveform::Dc(i)).unwrap();
        let opts = SimOptions { record_nodes: vec![n], ..Default::default() };
        let out = Solver::new(ckt, opts).unwrap().try_run(40.0 * r * c + 50e-12).unwrap();
        let v_final = *out.traces[0].last().unwrap();
        prop_assert!(((v_final - i * r) / (i * r)).abs() < 0.01,
            "v={} want {}", v_final, i * r);
    }

    /// A biased-below-critical junction never slips on its own, for
    /// any bias fraction below ~0.9.
    #[test]
    fn subcritical_junction_is_stable(bias_frac in 0.1f64..0.85) {
        let mut ckt = Circuit::new();
        let n = ckt.node();
        let jj = ckt.add_jj(n, NodeId::GROUND, JjParams::default()).unwrap();
        ckt.add_bias(n, bias_frac * 1.0e-4).unwrap();
        let out = Solver::new(ckt, SimOptions::default()).unwrap().try_run(150e-12).unwrap();
        prop_assert_eq!(out.pulse_count(jj), 0);
        // Phase settles to asin(bias fraction).
        prop_assert!((out.final_phase(jj) - bias_frac.asin()).abs() < 0.1);
    }

    /// JTL propagation is robust across its measured bias margin
    /// (the default cell works from ~0.63·Ic to ~0.85·Ic): one pulse
    /// in, exactly one pulse out per stage.
    #[test]
    fn jtl_margins(bias in 0.65f64..0.85) {
        let p = JtlParams { bias_frac: bias, ..Default::default() };
        let (ckt, stages) = jtl_chain(4, &p);
        let out = Solver::new(ckt, SimOptions::default()).unwrap().try_run(200e-12).unwrap();
        for jj in stages {
            prop_assert_eq!(out.pulse_count(jj), 1);
        }
    }
}
