//! Architecture-level estimation (paper §IV-A.3): integrate the unit
//! models into whole-NPU frequency, power, area and per-access energy
//! numbers.

use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use sfq_cells::{scaling, CellLibrary, GateKind};

use crate::clocking::{Clocking, PairTiming};
use crate::clocktree::ClockTree;
use crate::floorplan::{Floorplan, UnitAreas};
use crate::structure::{GateCounts, UnitModel};
use crate::units::{buffer_model, dau_model, nw_unit_model, pe_model, BufferConfig};

const MB: u64 = 1024 * 1024;
const KB: u64 = 1024;

/// Architectural configuration of an SFQ NPU — the union of the
/// paper's "µArchitecture param." and "Architecture param." inputs
/// (Fig. 10), with presets for every Table I column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NpuConfig {
    /// Design-point name.
    pub name: String,
    /// PE-array height (rows; the contraction dimension).
    pub array_height: u32,
    /// PE-array width (columns; the filter dimension).
    pub array_width: u32,
    /// Datapath bit width.
    pub bits: u32,
    /// Weight registers per PE.
    pub regs_per_pe: u32,
    /// Ifmap buffer capacity, bytes.
    pub ifmap_buf_bytes: u64,
    /// Output buffer capacity, bytes (the integrated psum+ofmap buffer
    /// when `integrated_output`, otherwise the ofmap buffer alone).
    pub output_buf_bytes: u64,
    /// Separate psum buffer capacity, bytes (0 when integrated).
    pub psum_buf_bytes: u64,
    /// Weight buffer capacity, bytes.
    pub weight_buf_bytes: u64,
    /// Buffer division degree (chunks per buffer; 1 = monolithic).
    pub division: u32,
    /// Whether psum and ofmap share one chunked buffer (SuperNPU's
    /// first optimization).
    pub integrated_output: bool,
}

impl NpuConfig {
    /// The paper's *Baseline* SFQ NPU (Table I): TPU-like 256×256
    /// array, three monolithic 8 MB buffers.
    pub fn paper_baseline() -> Self {
        NpuConfig {
            name: "Baseline".into(),
            array_height: 256,
            array_width: 256,
            bits: 8,
            regs_per_pe: 1,
            ifmap_buf_bytes: 8 * MB,
            output_buf_bytes: 8 * MB,
            psum_buf_bytes: 8 * MB,
            weight_buf_bytes: 64 * KB,
            division: 1,
            integrated_output: false,
        }
    }

    /// *Buffer opt.* (Table I): integrated 12 MB + 12 MB buffers,
    /// division degree 64.
    pub fn paper_buffer_opt() -> Self {
        NpuConfig {
            name: "Buffer opt.".into(),
            ifmap_buf_bytes: 12 * MB,
            output_buf_bytes: 12 * MB,
            psum_buf_bytes: 0,
            division: 64,
            integrated_output: true,
            ..Self::paper_baseline()
        }
    }

    /// *Resource opt.* (Table I): PE-array width cut to 64, buffers
    /// grown to 24 MB + 24 MB, division degree 256.
    pub fn paper_resource_opt() -> Self {
        NpuConfig {
            name: "Resource opt.".into(),
            array_width: 64,
            ifmap_buf_bytes: 24 * MB,
            output_buf_bytes: 24 * MB,
            psum_buf_bytes: 0,
            weight_buf_bytes: 16 * KB,
            division: 256,
            integrated_output: true,
            ..Self::paper_baseline()
        }
    }

    /// *SuperNPU* (Table I): Resource opt. plus 8 weight registers per
    /// PE and a 128 KB weight buffer.
    pub fn paper_supernpu() -> Self {
        NpuConfig {
            name: "SuperNPU".into(),
            regs_per_pe: 8,
            weight_buf_bytes: 128 * KB,
            ..Self::paper_resource_opt()
        }
    }

    /// Total PE count.
    pub fn pe_count(&self) -> u64 {
        u64::from(self.array_height) * u64::from(self.array_width)
    }

    /// Total activation buffering (ifmap + output + psum), bytes.
    pub fn activation_capacity_bytes(&self) -> u64 {
        self.ifmap_buf_bytes + self.output_buf_bytes + self.psum_buf_bytes
    }

    /// The ifmap buffer bank configuration.
    pub fn ifmap_buffer(&self) -> BufferConfig {
        BufferConfig {
            capacity_bytes: self.ifmap_buf_bytes,
            rows: self.array_height,
            bits: self.bits,
            division: self.division,
        }
    }

    /// The output (psum+ofmap) buffer bank configuration. For
    /// integrated designs the chunk count is scaled so chunk *length*
    /// matches the paper's Fig. 19 (width-many chunks of output).
    pub fn output_buffer(&self) -> BufferConfig {
        BufferConfig {
            capacity_bytes: self.output_buf_bytes + self.psum_buf_bytes,
            rows: self.array_width,
            bits: self.bits,
            division: self.division,
        }
    }
}

/// Per-unit contribution to the whole-chip totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitBreakdown {
    /// Unit name.
    pub name: String,
    /// Instances of this unit on the chip.
    pub count: u64,
    /// Gates per instance.
    pub gates_per_instance: u64,
    /// Total Josephson junctions contributed.
    pub jj_total: u64,
    /// Total static power contributed, watts.
    pub static_w: f64,
    /// Total area contributed, mm² (native feature size).
    pub area_mm2: f64,
    /// Unit-internal maximum frequency, GHz (None for pure wiring).
    pub frequency_ghz: Option<f64>,
    /// Energy per access of one instance, joules.
    pub access_energy_j: f64,
}

/// Whole-NPU estimate (the estimator's output arrow in Fig. 10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NpuEstimate {
    /// NPU clock frequency, GHz: the minimum over all unit and
    /// inter-unit gate pairs.
    pub frequency_ghz: f64,
    /// Peak throughput in TMAC/s (`PEs × f`).
    pub peak_tmacs: f64,
    /// Total static power, watts (zero under ERSFQ).
    pub static_w: f64,
    /// Total Josephson junctions.
    pub jj_total: u64,
    /// Area at the native feature size, mm².
    pub area_mm2_native: f64,
    /// Area scaled to the 28 nm node for the Table I comparison, mm².
    pub area_mm2_28nm: f64,
    /// Energy per PE MAC operation, joules.
    pub pe_mac_energy_j: f64,
    /// Energy per single-entry shift of one buffer row lane, joules.
    pub buffer_shift_energy_j: f64,
    /// Energy per ifmap element aligned by the DAU, joules.
    pub dau_energy_j: f64,
    /// Energy per element-hop through the network unit, joules.
    pub nw_hop_energy_j: f64,
    /// Chip-wide clock-distribution energy per clock cycle, joules.
    /// SFQ clocks are not gated: every clocked gate consumes a clock
    /// pulse (one splitter tap) every cycle, whether or not data is
    /// present. Covers the PE array, the DAU and one active chunk per
    /// buffer.
    pub clock_energy_per_cycle_j: f64,
    /// Per-unit breakdown rows.
    pub units: Vec<UnitBreakdown>,
    /// The placed floorplan (at the 28 nm-equivalent geometry used for
    /// the Table I area comparison), from which the inter-unit wire
    /// skew and wiring area are derived.
    pub floorplan: Floorplan,
}

fn breakdown(unit: &UnitModel, count: u64, lib: &CellLibrary) -> UnitBreakdown {
    let mut total = GateCounts::new();
    total.add_scaled(&unit.gates, count);
    UnitBreakdown {
        name: unit.name.clone(),
        count,
        gates_per_instance: unit.gates.total(),
        jj_total: total.jj_total(lib),
        static_w: total.static_w(lib),
        area_mm2: total.area_mm2(lib),
        frequency_ghz: unit.frequency_ghz(lib),
        access_energy_j: unit.access_energy_j(lib),
    }
}

/// Inter-unit clocked pairs (buffer→NW, NW→PE, PE→output buffer).
///
/// Inter-unit links are passive transmission lines that hold several
/// pulses in flight, so their *latency* never bounds the clock; the
/// binding quantity is the residual data-vs-clock skew left after
/// co-routing, which the floorplan supplies from the link geometry.
fn inter_unit_pairs(lib: &CellLibrary, skew_ps: f64) -> Vec<PairTiming> {
    let ptl = lib.gate(GateKind::PtlDriver).delay_ps + lib.gate(GateKind::PtlReceiver).delay_ps;
    let hop = |src: GateKind, dst: GateKind| PairTiming {
        src,
        dst,
        data_wire_ps: ptl + skew_ps,
        // The clock is co-routed: its tap covers the source delay and
        // the PTL flight, leaving only the residual skew as δt.
        clock_wire_ps: lib.gate(src).delay_ps + ptl,
        clocking: Clocking::Concurrent,
    };
    vec![
        hop(GateKind::Dff, GateKind::Dff), // buffer tail -> NW unit
        hop(GateKind::Dff, GateKind::And), // NW unit -> PE operand port
        hop(GateKind::Xor, GateKind::Dff), // PE psum out -> output buffer
    ]
}

// ------------------------------------------------------------ memoization

/// Bit-exact fingerprint of everything in a [`CellLibrary`] that can
/// influence an estimate: the numeric device parameters, the bias
/// scheme, and every gate row (in the library's stable iteration
/// order). Two libraries with equal fingerprints produce bit-identical
/// estimates, so a memo hit can never change a result.
fn library_fingerprint(lib: &CellLibrary) -> Vec<u64> {
    let d = lib.device();
    let mut fp = vec![
        d.feature_um.to_bits(),
        d.bias_mv.to_bits(),
        d.critical_current_ua.to_bits(),
        d.area_per_jj_um2.to_bits(),
        d.temperature_k.to_bits(),
        d.bias.energy_factor().to_bits(),
    ];
    for (_, g) in lib.iter() {
        fp.push(g.delay_ps.to_bits());
        fp.push(g.setup_ps.to_bits());
        fp.push(g.hold_ps.to_bits());
        fp.push(g.static_uw.to_bits());
        fp.push(g.energy_aj.to_bits());
        fp.push(u64::from(g.jj_count));
    }
    fp
}

type EstimateKey = (NpuConfig, Vec<u64>);

/// Process-wide memo of completed estimates. Sweeps re-estimate the
/// same handful of design points (baselines, normalization anchors)
/// many times; a linear scan over the few dozen distinct keys is far
/// cheaper than one estimation. Cleared wholesale if it ever grows
/// past a bound no legitimate sweep reaches.
static ESTIMATE_CACHE: RwLock<Vec<(EstimateKey, NpuEstimate)>> = RwLock::new(Vec::new());
const ESTIMATE_CACHE_CAP: usize = 1024;

/// Always-on `estimator.estimate.cache_hit` / `.cache_miss` counters
/// in the [`sfq_obs`] registry (the former ad-hoc statics): they
/// record whether or not `SUPERNPU_METRICS` is set, so the
/// [`estimate_cache_stats`] alias keeps its pre-registry behavior.
fn cache_counters() -> (&'static sfq_obs::Counter, &'static sfq_obs::Counter) {
    static C: OnceLock<(&'static sfq_obs::Counter, &'static sfq_obs::Counter)> = OnceLock::new();
    *C.get_or_init(|| {
        (
            sfq_obs::counter("estimator.estimate.cache_hit"),
            sfq_obs::counter("estimator.estimate.cache_miss"),
        )
    })
}

/// `(hits, misses)` of the estimate memo since process start (or the
/// last [`clear_estimate_cache`]).
///
/// Deprecated alias: thin wrapper over the
/// `estimator.estimate.cache_hit` / `estimator.estimate.cache_miss`
/// counters in the [`sfq_obs`] registry; prefer reading those (or
/// [`sfq_obs::snapshot`]) in new code.
pub fn estimate_cache_stats() -> (u64, u64) {
    let (hits, misses) = cache_counters();
    (hits.get(), misses.get())
}

/// Drop all memoized estimates and reset the hit/miss counters.
pub fn clear_estimate_cache() {
    let mut cache = ESTIMATE_CACHE.write();
    cache.clear();
    let (hits, misses) = cache_counters();
    hits.reset();
    misses.reset();
}

/// Run the full three-layer estimation for `cfg` under `lib`.
///
/// Results are memoized process-wide on the configuration plus a
/// bit-exact library fingerprint, so sweeps that re-estimate the same
/// design point (every normalized figure divides by a baseline
/// estimate) pay for it once.
///
/// # Panics
///
/// Panics if the configuration has zero-sized fields (the unit models
/// assert their inputs).
pub fn estimate(cfg: &NpuConfig, lib: &CellLibrary) -> NpuEstimate {
    let key: EstimateKey = (cfg.clone(), library_fingerprint(lib));
    let _pf = sfq_obs::prof::frame("estimator.estimate");
    let (cache_hits, cache_misses) = cache_counters();
    if let Some((_, est)) = ESTIMATE_CACHE.read().iter().find(|(k, _)| *k == key) {
        cache_hits.inc();
        sfq_obs::prof::count("cache_hit", 1);
        return est.clone();
    }
    cache_misses.inc();
    sfq_obs::prof::count("cache_miss", 1);
    let fill_started = sfq_obs::enabled().then(Instant::now);
    let fill_frame = sfq_obs::prof::frame("fill");
    let est = estimate_uncached(cfg, lib);
    drop(fill_frame);
    if let Some(t0) = fill_started {
        sfq_obs::observe(
            "estimator.estimate.fill_ms",
            t0.elapsed().as_secs_f64() * 1e3,
        );
    }
    let mut cache = ESTIMATE_CACHE.write();
    if cache.len() >= ESTIMATE_CACHE_CAP {
        cache.clear();
    }
    if !cache.iter().any(|(k, _)| *k == key) {
        cache.push((key, est.clone()));
    }
    est
}

/// Budget-aware [`estimate`]: refuses to start a new estimate once
/// the budget is cancelled or past its deadline, and runs the model
/// under the budget's ambient scope so nested guard queries observe
/// it. The closed-form model itself is microseconds of work — this is
/// the bottom rung of the degradation ladder, so the pre-flight check
/// is the only gate it needs (a sweep that is out of time gets a
/// typed stop instead of a silently-late point).
///
/// # Errors
///
/// The budget's terminal state when it is already exhausted:
/// cancellation or a passed deadline.
pub fn estimate_with_budget(
    cfg: &NpuConfig,
    lib: &CellLibrary,
    budget: &sfq_guard::RunBudget,
) -> Result<NpuEstimate, sfq_guard::BudgetStop> {
    if let Some(stop) = budget.check_now() {
        return Err(stop);
    }
    Ok(sfq_guard::scope(budget, || estimate(cfg, lib)))
}

/// [`estimate`] without the process-wide memo: every call pays the
/// full three-layer model. Stress harnesses that hammer millions of
/// synthetic design points use this to keep the cache's linear scans
/// (and its shared `RwLock`) out of the measured work.
pub fn estimate_uncached(cfg: &NpuConfig, lib: &CellLibrary) -> NpuEstimate {
    let pe = pe_model(cfg.bits, cfg.regs_per_pe);
    let nw = nw_unit_model(cfg.bits);
    let dau = dau_model(cfg.array_height, cfg.bits);
    let ifmap = buffer_model("ifmap", cfg.ifmap_buffer());
    let output = buffer_model(
        if cfg.integrated_output {
            "output(int)"
        } else {
            "ofmap"
        },
        cfg.output_buffer(),
    );
    let weight = buffer_model(
        "weight",
        BufferConfig {
            capacity_bytes: cfg.weight_buf_bytes,
            rows: cfg.array_width,
            bits: cfg.bits,
            division: 1,
        },
    );

    let mut units = vec![
        breakdown(&pe, cfg.pe_count(), lib),
        breakdown(&nw, cfg.pe_count(), lib),
        breakdown(&dau, 1, lib),
        breakdown(&ifmap, 1, lib),
        breakdown(&output, 1, lib),
        breakdown(&weight, 1, lib),
    ];
    if !cfg.integrated_output && cfg.psum_buf_bytes > 0 {
        let psum = buffer_model(
            "psum",
            BufferConfig {
                capacity_bytes: cfg.psum_buf_bytes,
                rows: cfg.array_width,
                bits: cfg.bits,
                division: cfg.division,
            },
        );
        // The separate psum bank replaces half the combined output bank:
        // rebuild the ofmap row with its own capacity.
        units[4] = breakdown(
            &buffer_model(
                "ofmap",
                BufferConfig {
                    capacity_bytes: cfg.output_buf_bytes,
                    rows: cfg.array_width,
                    bits: cfg.bits,
                    division: cfg.division,
                },
            ),
            1,
            lib,
        );
        units.push(breakdown(&psum, 1, lib));
    }

    // Floorplan at the 28 nm-equivalent geometry (the scale at which
    // the paper compares dies; the 1.0 µm areas are treated as scaled,
    // per its footnote 2).
    let area_scale =
        sfq_cells::scaling::area_factor(lib.device().feature_um, scaling::NODE_28NM_UM);
    let scaled = |idx: usize| units[idx].area_mm2 * area_scale;
    let unit_areas = UnitAreas {
        pe_array: scaled(0),
        network: scaled(1),
        dau: scaled(2),
        ifmap: scaled(3),
        output: scaled(4) + if units.len() > 6 { scaled(6) } else { 0.0 },
        weight: scaled(5),
    };
    let floorplan = Floorplan::place(&unit_areas);

    // Frequency: min over unit pairs and inter-unit pairs (the latter
    // bounded by the floorplan's residual wire skew).
    let unit_min = [&pe, &nw, &dau, &ifmap, &output, &weight]
        .iter()
        .filter_map(|u| u.frequency_ghz(lib))
        .fold(f64::INFINITY, f64::min);
    let inter_min = inter_unit_pairs(lib, floorplan.inter_unit_skew_ps())
        .iter()
        .map(|p| p.frequency_ghz(lib))
        .fold(f64::INFINITY, f64::min);
    let frequency_ghz = unit_min.min(inter_min);

    let static_w: f64 = units.iter().map(|u| u.static_w).sum();
    let jj_total: u64 = units.iter().map(|u| u.jj_total).sum();
    // Clock-distribution / power-routing overlay plus the floorplan's
    // inter-unit wiring channels.
    let cell_area: f64 = units.iter().map(|u| u.area_mm2).sum();
    let area_mm2_native: f64 = cell_area * 1.12 + floorplan.wiring_area_mm2() / area_scale;
    let area_mm2_28nm = scaling::scale_area_mm2(
        area_mm2_native,
        lib.device().feature_um,
        scaling::NODE_28NM_UM,
    );

    // Per-access energies used by the cycle simulator's power model.
    let pe_mac_energy_j = pe.access_energy_j(lib);
    let d = lib.gate(GateKind::Dff);
    let s = lib.gate(GateKind::Splitter);
    // One entry-shift of one row lane clocks `bits` storage cells and
    // their clock splitters.
    let buffer_shift_energy_j = f64::from(cfg.bits) * (d.energy_aj + s.energy_aj) * 1e-18;
    let dau_energy_j = {
        let bp = lib.gate(GateKind::DffBypass);
        // An aligned element traverses on average half the PE pipeline
        // depth of bypass cells.
        let hops = f64::from(crate::units::pe_pipeline_depth(cfg.bits) - 1) / 2.0;
        f64::from(cfg.bits) * hops * (bp.energy_aj + s.energy_aj) * 1e-18
    };
    let nw_hop_energy_j = nw.access_energy_j(lib);

    // Ungated clock distribution: a splitter tree serves every clocked
    // gate of the logic units each cycle, and the active buffer chunks
    // take a JTL clock tap per cell (the rest of the buffer's clock
    // spine is idle while its chunks are unselected).
    let clock_energy_per_cycle_j = {
        let jtl_j = lib.gate(GateKind::Jtl).energy_aj * 1e-18;
        let clocked_in = |gates: &crate::structure::GateCounts| -> u64 {
            gates
                .iter()
                .filter(|(k, _)| k.class() == sfq_cells::GateClass::Clocked)
                .map(|(_, n)| n)
                .sum()
        };
        let logic_sinks = (clocked_in(&pe.gates) + clocked_in(&nw.gates)) * cfg.pe_count()
            + clocked_in(&dau.gates);
        let tree = ClockTree::for_sinks(logic_sinks.max(1));
        let active_buffer_cells = (cfg.ifmap_buffer().chunk_entries() * u64::from(cfg.array_height)
            + cfg.output_buffer().chunk_entries() * u64::from(cfg.array_width))
            as f64
            * f64::from(cfg.bits);
        tree.energy_per_cycle_j(lib) + active_buffer_cells * jtl_j
    };

    NpuEstimate {
        frequency_ghz,
        peak_tmacs: cfg.pe_count() as f64 * frequency_ghz * 1e9 / 1e12,
        static_w,
        jj_total,
        area_mm2_native,
        area_mm2_28nm,
        pe_mac_energy_j,
        buffer_shift_energy_j,
        dau_energy_j,
        nw_hop_energy_j,
        clock_energy_per_cycle_j,
        units,
        floorplan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_cells::BiasScheme;

    #[test]
    fn presets_match_table1_shapes() {
        let b = NpuConfig::paper_baseline();
        assert_eq!((b.array_height, b.array_width), (256, 256));
        assert_eq!(b.activation_capacity_bytes(), 24 * MB);
        let s = NpuConfig::paper_supernpu();
        assert_eq!((s.array_height, s.array_width), (256, 64));
        assert_eq!(s.regs_per_pe, 8);
        assert_eq!(s.activation_capacity_bytes(), 48 * MB);
        assert!(s.integrated_output);
    }

    #[test]
    fn baseline_frequency_near_paper_52_6() {
        let lib = CellLibrary::aist_10um();
        let est = estimate(&NpuConfig::paper_baseline(), &lib);
        assert!(
            (est.frequency_ghz - 52.6).abs() < 1.5,
            "frequency {:.2} GHz",
            est.frequency_ghz
        );
        // Peak: 65536 PEs × ~52.6 GHz ≈ 3450 TMAC/s (paper: 3366).
        assert!(est.peak_tmacs > 3000.0 && est.peak_tmacs < 3700.0);
    }

    #[test]
    fn supernpu_peak_quarter_of_baseline() {
        let lib = CellLibrary::aist_10um();
        let b = estimate(&NpuConfig::paper_baseline(), &lib);
        let s = estimate(&NpuConfig::paper_supernpu(), &lib);
        let ratio = b.peak_tmacs / s.peak_tmacs;
        assert!((ratio - 4.0).abs() < 0.2, "peak ratio {ratio:.2}");
    }

    #[test]
    fn rsfq_static_power_is_hundreds_of_watts() {
        // Table III: RSFQ-SuperNPU dissipates 964 W of static power.
        let lib = CellLibrary::aist_10um();
        let est = estimate(&NpuConfig::paper_supernpu(), &lib);
        assert!(
            est.static_w > 600.0 && est.static_w < 1400.0,
            "static {:.0} W",
            est.static_w
        );
    }

    #[test]
    fn ersfq_static_power_is_zero() {
        let lib = CellLibrary::aist_10um().with_bias(BiasScheme::Ersfq);
        let est = estimate(&NpuConfig::paper_supernpu(), &lib);
        assert_eq!(est.static_w, 0.0);
        // But switching energy doubled.
        let rsfq = estimate(&NpuConfig::paper_supernpu(), &CellLibrary::aist_10um());
        assert!((est.pe_mac_energy_j / rsfq.pe_mac_energy_j - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_area_comparable_to_tpu_die() {
        // Table I: every design lands under the TPU core's 330 mm²
        // when scaled to 28 nm.
        let lib = CellLibrary::aist_10um();
        for cfg in [
            NpuConfig::paper_baseline(),
            NpuConfig::paper_buffer_opt(),
            NpuConfig::paper_resource_opt(),
            NpuConfig::paper_supernpu(),
        ] {
            let est = estimate(&cfg, &lib);
            assert!(
                est.area_mm2_28nm > 100.0 && est.area_mm2_28nm < 400.0,
                "{}: {:.0} mm²",
                cfg.name,
                est.area_mm2_28nm
            );
        }
    }

    #[test]
    fn area_ordering_follows_table1() {
        // Table I: Baseline ≲ Buffer opt. < Resource opt. ≲ SuperNPU.
        let lib = CellLibrary::aist_10um();
        let a: Vec<f64> = [
            NpuConfig::paper_baseline(),
            NpuConfig::paper_buffer_opt(),
            NpuConfig::paper_resource_opt(),
            NpuConfig::paper_supernpu(),
        ]
        .iter()
        .map(|c| estimate(c, &lib).area_mm2_28nm)
        .collect();
        assert!(
            a[1] >= a[0] * 0.98,
            "buffer opt {:.0} vs baseline {:.0}",
            a[1],
            a[0]
        );
        assert!(
            a[3] >= a[2] * 0.98,
            "supernpu {:.0} vs resource {:.0}",
            a[3],
            a[2]
        );
    }

    #[test]
    fn breakdown_rows_sum_to_totals() {
        let lib = CellLibrary::aist_10um();
        let est = estimate(&NpuConfig::paper_baseline(), &lib);
        let sum_static: f64 = est.units.iter().map(|u| u.static_w).sum();
        assert!((sum_static - est.static_w).abs() < 1e-9);
        let sum_jj: u64 = est.units.iter().map(|u| u.jj_total).sum();
        assert_eq!(sum_jj, est.jj_total);
    }

    #[test]
    fn chunk_entries_drive_shift_distance() {
        let cfg = NpuConfig::paper_baseline();
        // 8 MB / 256 rows = 32 KiB per row, one chunk.
        assert_eq!(cfg.ifmap_buffer().chunk_entries(), 32 * 1024);
        let s = NpuConfig::paper_supernpu();
        // 24 MB / 256 rows / 256 chunks = 384 entries.
        assert_eq!(s.ifmap_buffer().chunk_entries(), 384);
    }
}
