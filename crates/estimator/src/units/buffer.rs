//! Shift-register on-chip buffer model (paper §II-B.3, §V-B.1).
//!
//! SFQ on-chip memory is a bank of serially connected DFFs with a
//! feedback loop — no random access. SuperNPU divides each buffer
//! into `division` chunks connected by multiplexer/demultiplexer
//! trees; this model charges the storage cells, the per-chunk feedback
//! wiring, and the mux/demux overhead that Fig. 20 shows growing with
//! the division degree.

use serde::{Deserialize, Serialize};
use sfq_cells::GateKind;

use crate::clocking::{Clocking, PairTiming};
use crate::structure::{GateCounts, UnitModel};

/// Configuration of one on-chip buffer bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Number of parallel rows (one per PE row or column it feeds).
    pub rows: u32,
    /// Bits per entry (datapath width).
    pub bits: u32,
    /// Number of chunks the buffer is divided into (1 = monolithic).
    pub division: u32,
}

impl BufferConfig {
    /// Entries (elements) per row per chunk — the shift distance that
    /// dominates preparation cycles.
    pub fn chunk_entries(&self) -> u64 {
        let total_entries = self.capacity_bytes * 8 / u64::from(self.bits);
        (total_entries / u64::from(self.rows) / u64::from(self.division)).max(1)
    }
}

/// Mux + demux gate overhead per row-bit lane for a `division`-way
/// chunked buffer: a `division`-input select needs one gating AND per
/// chunk and a merger tree to combine, mirrored on the demux side with
/// splitters.
pub fn mux_overhead_per_lane(division: u32) -> GateCounts {
    let d = u64::from(division);
    let mut g = GateCounts::new();
    if d > 1 {
        g.add(GateKind::And, d);
        g.add(GateKind::Merger, d - 1);
        g.add(GateKind::Splitter, d - 1);
        // Control fanout.
        g.add(GateKind::Jtl, d / 2);
    }
    g
}

/// Structure model of one buffer bank.
pub fn buffer_model(name: &str, cfg: BufferConfig) -> UnitModel {
    assert!(cfg.capacity_bytes > 0, "buffer needs capacity");
    assert!(
        cfg.rows > 0 && cfg.bits > 0 && cfg.division > 0,
        "buffer config fields must be positive"
    );
    let bits_total = cfg.capacity_bytes * 8;
    let mut g = GateCounts::new();
    // Storage cells.
    g.add(GateKind::Dff, bits_total);
    // Clock distribution: the counter-flow clock rides a JTL chain
    // along each row with one repeater tap per cell.
    g.add(GateKind::Jtl, bits_total);
    // Feedback path per row per chunk per bit: JTL + merger at the
    // head (to re-inject) and splitter at the tail (to tap the output).
    let lanes = u64::from(cfg.rows) * u64::from(cfg.bits);
    let loops = lanes * u64::from(cfg.division);
    g.add(GateKind::Jtl, loops * 2);
    g.add(GateKind::Merger, loops);
    g.add(GateKind::Splitter, loops);
    // Mux/demux trees: input side + output side per lane.
    let mux = mux_overhead_per_lane(cfg.division);
    g.add_scaled(&mux, lanes * 2);

    // Shift registers have a recirculation loop → counter-flow clocked.
    let hop = PairTiming {
        src: GateKind::Dff,
        dst: GateKind::Dff,
        data_wire_ps: 0.0,
        clock_wire_ps: 1.65,
        clocking: Clocking::CounterFlow,
    };
    UnitModel {
        name: format!(
            "{name}[{} MB /{}]",
            cfg.capacity_bytes / (1024 * 1024),
            cfg.division
        ),
        gates: g,
        pairs: vec![hop],
        // Per shift cycle only the active chunk's cells are clocked;
        // activity is accounted per-access by the simulator, so the
        // unit-level factor covers one full active-chunk shift.
        activity: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_cells::CellLibrary;

    const MB: u64 = 1024 * 1024;

    fn cfg(division: u32) -> BufferConfig {
        BufferConfig {
            capacity_bytes: 8 * MB,
            rows: 256,
            bits: 8,
            division,
        }
    }

    #[test]
    fn chunk_entries_shrink_with_division() {
        // 8 MB over 256 rows of bytes: 32768 entries per row.
        assert_eq!(cfg(1).chunk_entries(), 32768);
        assert_eq!(cfg(64).chunk_entries(), 512);
        assert_eq!(cfg(4096).chunk_entries(), 8);
    }

    #[test]
    fn buffer_frequency_matches_counterflow_sr() {
        let lib = CellLibrary::aist_10um();
        let f = buffer_model("ifmap", cfg(1)).frequency_ghz(&lib).unwrap();
        // The Fig. 7(c) counter-flow shift-register point: ≈71 GHz.
        assert!((f - 71.0).abs() < 4.0, "buffer frequency {f:.1}");
    }

    #[test]
    fn division_adds_area_monotonically() {
        let lib = CellLibrary::aist_10um();
        let a1 = buffer_model("b", cfg(1)).gates.area_mm2(&lib);
        let a64 = buffer_model("b", cfg(64)).gates.area_mm2(&lib);
        let a4096 = buffer_model("b", cfg(4096)).gates.area_mm2(&lib);
        assert!(a64 > a1);
        assert!(a4096 > a64);
        // Division 64 is cheap (<10% over monolithic); 4096 is not.
        assert!(
            (a64 - a1) / a1 < 0.10,
            "d=64 overhead {:.3}",
            (a64 - a1) / a1
        );
        assert!(
            (a4096 - a1) / a1 > 0.25,
            "d=4096 overhead {:.3}",
            (a4096 - a1) / a1
        );
    }

    #[test]
    fn storage_dominates_gate_count() {
        let m = buffer_model("b", cfg(64));
        let dff = m.gates.count(GateKind::Dff);
        assert!(dff >= 8 * MB * 8);
        assert!(dff as f64 / m.gates.total() as f64 > 0.45);
    }

    #[test]
    fn monolithic_has_no_mux() {
        assert_eq!(mux_overhead_per_lane(1).total(), 0);
        assert!(mux_overhead_per_lane(2).total() > 0);
    }
}
