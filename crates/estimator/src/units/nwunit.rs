//! On-chip network unit (paper §III-A): the store-and-forward 2D
//! systolic branch the paper selects over splitter trees.

use sfq_cells::GateKind;

use crate::clocking::{Clocking, PairTiming};
use crate::structure::{GateCounts, UnitModel};

/// Structure model of one network branch position: per bit, a DFF for
/// store-and-forward plus a splitter that peels the local copy off to
/// the PE (the `D`/`S` pair of the paper's Fig. 4), for both the
/// horizontal ifmap chain and the vertical psum/weight chain.
pub fn nw_unit_model(bits: u32) -> UnitModel {
    assert!(bits > 0, "network unit needs a positive bit width");
    let b = u64::from(bits);
    let mut g = GateCounts::new();
    g.add(GateKind::Dff, 2 * b);
    g.add(GateKind::Splitter, 2 * b);
    // Clock taps.
    g.add(GateKind::Jtl, 2 * b);

    // DFF -> DFF store-and-forward hop, clock skew-tuned along the
    // chain (this is what makes the systolic design fast in Fig. 5).
    let hop = PairTiming {
        src: GateKind::Dff,
        dst: GateKind::Dff,
        data_wire_ps: 4.0,
        clock_wire_ps: 4.0,
        clocking: Clocking::ConcurrentSkewed,
    };
    UnitModel {
        name: format!("NW[{bits}b]"),
        gates: g,
        pairs: vec![hop],
        activity: 0.6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_cells::CellLibrary;

    #[test]
    fn nw_unit_is_fast() {
        let lib = CellLibrary::aist_10um();
        let f = nw_unit_model(8).frequency_ghz(&lib).unwrap();
        // Skew-tuned DFF chain: 133 GHz with the default library.
        assert!(f > 100.0, "NW frequency {f:.1} GHz");
    }

    #[test]
    fn gates_scale_with_bit_width() {
        let n8 = nw_unit_model(8);
        let n16 = nw_unit_model(16);
        assert_eq!(2 * n8.gates.total(), n16.gates.total());
    }

    #[test]
    #[should_panic(expected = "positive bit width")]
    fn zero_width_panics() {
        let _ = nw_unit_model(0);
    }
}
