//! Microarchitecture structure models (§III of the paper): the PE,
//! the on-chip network unit, the data-alignment unit and the
//! shift-register buffers.
//!
//! Each model turns configuration parameters into a
//! [`crate::UnitModel`]:
//! a gate inventory plus the clocked gate pairs that bound the unit's
//! frequency under its clocking scheme.

mod buffer;
mod dau;
mod nwunit;
mod pe;

pub use buffer::{buffer_model, mux_overhead_per_lane, BufferConfig};
pub use dau::dau_model;
pub use nwunit::nw_unit_model;
pub use pe::{full_adder_gates, mac_unit_model, pe_model, pe_pipeline_depth};
