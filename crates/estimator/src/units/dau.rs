//! Data-alignment unit (paper §III-C): replicates and forwards ifmap
//! data to the right PE rows at the right cycle, removing the >90%
//! buffered-pixel duplication of Fig. 8.

use sfq_cells::GateKind;

use crate::clocking::{Clocking, PairTiming};
use crate::structure::{GateCounts, UnitModel};
use crate::units::pe_pipeline_depth;

/// Structure model of the DAU for an array of `rows` PE rows and a
/// `bits`-wide datapath.
///
/// Per the paper's Fig. 9, each PE row gets:
/// * a splitter-tree tap from every ifmap buffer row,
/// * a selector (one AND per bit, gated by the controller),
/// * a controller (a small counter/comparator state machine),
/// * a cascade of bypassable special DFFs whose length grows with the
///   row index so psum and ifmap arrive at the PE simultaneously —
///   row `r` needs up to `r·(P−1)` cycles of delay for a `P`-stage PE.
pub fn dau_model(rows: u32, bits: u32) -> UnitModel {
    assert!(rows > 0 && bits > 0, "DAU needs positive rows and width");
    let r = u64::from(rows);
    let b = u64::from(bits);
    let depth = u64::from(pe_pipeline_depth(bits)) - 1;

    let mut g = GateCounts::new();
    // Distribution splitter tree: every buffer row fans to all DAU
    // rows: (rows − 1) splitters per source row per bit.
    g.add(GateKind::Splitter, r * (r - 1) * b);
    // Selector: AND per bit per row (plus its control line).
    g.add(GateKind::And, r * b);
    // Controller per row: counters and comparators (32 DFF + 16 XOR +
    // 16 AND is a representative small state machine).
    g.add(GateKind::Dff, r * 32);
    g.add(GateKind::Xor, r * 16);
    g.add(GateKind::And, r * 16);
    // Bypassable alignment DFF cascades: sum over rows of r·(P−1).
    let cascade_cells = depth * (r * (r - 1) / 2) * b;
    g.add(GateKind::DffBypass, cascade_cells);
    // Clock taps for the cascades.
    g.add(GateKind::Jtl, cascade_cells / 4);

    let hop = PairTiming {
        src: GateKind::DffBypass,
        dst: GateKind::DffBypass,
        data_wire_ps: 0.0,
        clock_wire_ps: 0.0,
        clocking: Clocking::ConcurrentSkewed,
    };
    UnitModel {
        name: format!("DAU[{rows}r x {bits}b]"),
        gates: g,
        // Only the cascade stages the current mapping uses switch; on
        // average a small fraction of the triangle is active.
        activity: 0.05,
        pairs: vec![hop],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_cells::CellLibrary;

    #[test]
    fn cascade_grows_quadratically_with_rows() {
        let d64 = dau_model(64, 8);
        let d128 = dau_model(128, 8);
        let c64 = d64.gates.count(GateKind::DffBypass);
        let c128 = d128.gates.count(GateKind::DffBypass);
        assert!(c128 > 3 * c64 && c128 < 5 * c64, "{c64} -> {c128}");
    }

    #[test]
    fn dau_does_not_bound_npu_frequency() {
        let lib = CellLibrary::aist_10um();
        let f = dau_model(256, 8).frequency_ghz(&lib).unwrap();
        assert!(f > 52.6, "DAU frequency {f:.1} GHz must exceed the PE's");
    }

    #[test]
    fn row_count_drives_selector_count() {
        let d = dau_model(16, 8);
        // 16 rows × 8 bits selector ANDs + 16 rows × 16 controller ANDs.
        assert_eq!(d.gates.count(GateKind::And), 16 * 8 + 16 * 16);
    }
}
