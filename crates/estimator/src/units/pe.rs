//! Processing-element structure model (paper §III-B).
//!
//! The PE implements the weight-stationary dataflow — multiply the
//! held weight by the incoming ifmap value and add the result to the
//! partial sum flowing down the column — deliberately *without* a
//! feedback loop so the whole datapath can use concurrent-flow
//! clocking (Fig. 6(a) / Fig. 7).

use sfq_cells::GateKind;

use crate::clocking::{Clocking, PairTiming};
use crate::structure::{GateCounts, UnitModel};

/// Gate inventory of one ripple full adder realized in SFQ logic:
/// 2 XOR + 2 AND + 1 OR for the logic, plus the splitters/merger that
/// fan the inputs and recombine the carry.
pub fn full_adder_gates() -> GateCounts {
    let mut g = GateCounts::new();
    g.add(GateKind::Xor, 2)
        .add(GateKind::And, 2)
        .add(GateKind::Or, 1)
        .add(GateKind::Splitter, 2)
        .add(GateKind::Merger, 1);
    g
}

/// Gate-level pipeline depth of a `bits`-wide PE. The paper states its
/// 8-bit PE has 15 pipeline stages; the array multiplier's `2n−1`
/// diagonal structure produces exactly that.
pub fn pe_pipeline_depth(bits: u32) -> u32 {
    2 * bits - 1
}

/// Structure model of one PE: `bits`-wide multiplier, accumulation
/// adder, `regs` weight registers and the gate-level pipeline DFFs.
pub fn pe_model(bits: u32, regs: u32) -> UnitModel {
    assert!(
        bits > 0 && regs > 0,
        "PE needs positive width and registers"
    );
    let b = u64::from(bits);
    let fa = full_adder_gates();
    let mut g = GateCounts::new();

    // Array multiplier: b² partial-product ANDs + (b² − b) full adders.
    g.add(GateKind::And, b * b);
    g.add_scaled(&fa, b * b - b);

    // Partial-sum accumulation adder (psum width 2b + 8 guard bits).
    g.add_scaled(&fa, 2 * b + 8);

    // Weight registers: regs × bits NDRO cells with read-select ANDs.
    g.add(GateKind::Ndro, u64::from(regs) * b);
    g.add(GateKind::And, u64::from(regs) * b);

    // Gate-level pipeline DFFs: depth × (roughly 2b wide datapath).
    let depth = u64::from(pe_pipeline_depth(bits));
    g.add(GateKind::Dff, depth * 2 * b);

    // Clock distribution: one splitter per clocked gate.
    let clocked = g.count(GateKind::And)
        + g.count(GateKind::Or)
        + g.count(GateKind::Xor)
        + g.count(GateKind::Dff)
        + g.count(GateKind::Ndro);
    g.add(GateKind::Splitter, clocked);

    // Critical pair: an AND partial-product gate driving the adder
    // chain through a splitter + JTL hop. Converging product/psum
    // paths leave a residual 0.6 ps clock-tap offset after skew tuning
    // (calibrated so the 8-bit PE array lands at the paper's 52.6 GHz).
    let critical = PairTiming {
        src: GateKind::And,
        dst: GateKind::And,
        data_wire_ps: 4.0 + 3.3,
        clock_wire_ps: 0.6,
        clocking: Clocking::Concurrent,
    };
    // Secondary pair: XOR sum path, skewable more aggressively.
    let sum_pair = PairTiming {
        src: GateKind::Xor,
        dst: GateKind::Xor,
        data_wire_ps: 4.0,
        clock_wire_ps: 3.3,
        clocking: Clocking::Concurrent,
    };

    UnitModel {
        name: format!("PE[{bits}b x{regs}reg]"),
        gates: g,
        pairs: vec![critical, sum_pair],
        activity: 0.3,
    }
}

/// Standalone MAC unit (multiplier + accumulator, no weight registers
/// or network interface) — the die-level prototype of the paper's
/// Fig. 12(a), used for model validation.
pub fn mac_unit_model(bits: u32) -> UnitModel {
    let mut m = pe_model(bits, 1);
    m.name = format!("MAC[{bits}b]");
    // Remove the register file and its read selects: the prototype MAC
    // takes both operands from its inputs.
    let b = u64::from(bits);
    let mut g = GateCounts::new();
    for (k, n) in m.gates.iter() {
        let n = match k {
            GateKind::Ndro => 0,
            GateKind::And => n - b,
            _ => n,
        };
        if n > 0 {
            g.add(k, n);
        }
    }
    m.gates = g;
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_cells::CellLibrary;

    #[test]
    fn paper_8bit_pe_has_15_stages() {
        assert_eq!(pe_pipeline_depth(8), 15);
        assert_eq!(pe_pipeline_depth(4), 7);
    }

    #[test]
    fn pe_frequency_near_52_6_ghz() {
        let lib = CellLibrary::aist_10um();
        let f = pe_model(8, 1).frequency_ghz(&lib).unwrap();
        assert!((f - 52.6).abs() < 1.5, "PE frequency {f:.2} GHz");
    }

    #[test]
    fn more_registers_add_ndro_not_speed() {
        let lib = CellLibrary::aist_10um();
        let p1 = pe_model(8, 1);
        let p8 = pe_model(8, 8);
        assert_eq!(
            p8.gates.count(GateKind::Ndro),
            8 * p1.gates.count(GateKind::Ndro)
        );
        assert_eq!(p1.frequency_ghz(&lib), p8.frequency_ghz(&lib));
    }

    #[test]
    fn wider_pe_has_quadratic_multiplier() {
        let p4 = pe_model(4, 1);
        let p8 = pe_model(8, 1);
        // AND partial products grow ~4x from 4b to 8b.
        assert!(p8.gates.count(GateKind::And) > 3 * p4.gates.count(GateKind::And));
    }

    #[test]
    fn mac_unit_drops_register_file() {
        let mac = mac_unit_model(4);
        assert_eq!(mac.gates.count(GateKind::Ndro), 0);
        assert!(mac.gates.total() > 0);
    }

    #[test]
    fn pe_gate_count_is_plausible() {
        // An 8-bit PE should be hundreds-to-thousands of gates.
        let g = pe_model(8, 1).gates.total();
        assert!(g > 500 && g < 5000, "PE gates = {g}");
    }
}
