//! Global clock-distribution model.
//!
//! SFQ logic has no clock gating: the clock is itself a stream of SFQ
//! pulses fanned out through a splitter tree, and every clocked gate
//! consumes one pulse per cycle (§II-A). The tree therefore costs
//! junctions (area, static power), switching energy *every cycle*,
//! and accumulates skew with its depth — all three feed the
//! architecture-level model.

use serde::{Deserialize, Serialize};
use sfq_cells::{CellLibrary, GateKind};

use crate::structure::GateCounts;

/// A sized clock-distribution tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockTree {
    /// Clocked-gate sinks served.
    pub sinks: u64,
    /// Splitters in the fan-out tree (`sinks − 1` for a binary tree).
    pub splitters: u64,
    /// JTL repeaters along the distribution spine.
    pub repeaters: u64,
    /// Tree depth (binary levels).
    pub depth: u32,
}

/// JTL repeaters charged per sink for the spine run (a quarter of a
/// repeater per sink: spines are shared across whole rows of cells).
pub const REPEATERS_PER_SINK: f64 = 0.25;

/// Residual skew accumulated per tree level after balancing, ps.
pub const SKEW_PER_LEVEL_PS: f64 = 0.05;

impl ClockTree {
    /// Size a binary splitter tree for `sinks` clocked gates.
    ///
    /// # Panics
    ///
    /// Panics if `sinks == 0`.
    pub fn for_sinks(sinks: u64) -> Self {
        assert!(sinks > 0, "a clock tree needs at least one sink");
        ClockTree {
            sinks,
            splitters: sinks.saturating_sub(1),
            repeaters: (sinks as f64 * REPEATERS_PER_SINK) as u64,
            depth: 64 - u64::leading_zeros(sinks.next_power_of_two().max(1)),
        }
    }

    /// Gate inventory of the tree.
    pub fn gates(&self) -> GateCounts {
        let mut g = GateCounts::new();
        g.add(GateKind::Splitter, self.splitters);
        g.add(GateKind::Jtl, self.repeaters);
        g
    }

    /// Energy the tree dissipates every clock cycle (every splitter
    /// and repeater forwards one pulse per cycle), joules.
    pub fn energy_per_cycle_j(&self, lib: &CellLibrary) -> f64 {
        self.gates().full_switch_energy_j(lib)
    }

    /// Static power of the tree, watts.
    pub fn static_w(&self, lib: &CellLibrary) -> f64 {
        self.gates().static_w(lib)
    }

    /// Tree area, mm².
    pub fn area_mm2(&self, lib: &CellLibrary) -> f64 {
        self.gates().area_mm2(lib)
    }

    /// Residual skew between the earliest and latest leaf after
    /// balancing, ps.
    pub fn skew_ps(&self) -> f64 {
        f64::from(self.depth) * SKEW_PER_LEVEL_PS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_tree_bookkeeping() {
        let t = ClockTree::for_sinks(1024);
        assert_eq!(t.splitters, 1023);
        assert_eq!(t.depth, 11); // next_power_of_two(1024)=1024 -> 2^10, +1 for the leaf level count
        assert_eq!(t.repeaters, 256);
    }

    #[test]
    fn energy_scales_linearly_with_sinks() {
        let lib = CellLibrary::aist_10um();
        let small = ClockTree::for_sinks(1_000).energy_per_cycle_j(&lib);
        let large = ClockTree::for_sinks(1_000_000).energy_per_cycle_j(&lib);
        let ratio = large / small;
        assert!((ratio - 1000.0).abs() / 1000.0 < 0.01, "ratio {ratio}");
    }

    #[test]
    fn chip_scale_tree_burns_watts_at_50ghz() {
        // ~20M clocked gates (SuperNPU's PE array + DAU) at 52.6 GHz:
        // the ungated clock alone is watt-scale under ERSFQ — the
        // dominant term the Table III chip power reflects.
        let lib = CellLibrary::aist_10um().with_bias(sfq_cells::BiasScheme::Ersfq);
        let t = ClockTree::for_sinks(20_000_000);
        let power_w = t.energy_per_cycle_j(&lib) * 52.6e9;
        assert!(
            power_w > 0.5 && power_w < 10.0,
            "clock power {power_w:.2} W"
        );
    }

    #[test]
    fn skew_grows_logarithmically() {
        let small = ClockTree::for_sinks(1_000).skew_ps();
        let large = ClockTree::for_sinks(1_000_000).skew_ps();
        assert!(large > small);
        assert!(
            large < 3.0 * small,
            "log growth expected: {small} -> {large}"
        );
        // And stays well under the 19 ps cycle for any realistic chip.
        assert!(large < 5.0);
    }

    #[test]
    #[should_panic(expected = "at least one sink")]
    fn zero_sinks_panics() {
        let _ = ClockTree::for_sinks(0);
    }
}
