//! On-chip network design comparison (paper §III-A, Fig. 5): 2D
//! splitter tree vs 1D splitter tree vs 2D systolic store-and-forward
//! chain, in critical-path delay and area, versus PE-array width.

use serde::{Deserialize, Serialize};
use sfq_cells::{CellLibrary, GateKind};

use crate::structure::GateCounts;
use crate::units::nw_unit_model;

/// The three candidate network structures of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkDesign {
    /// Fan-out multicast through two global splitter trees (output-
    /// stationary style).
    SplitterTree2d,
    /// Fan-out multicast through per-row splitter trees (weight-
    /// stationary style).
    SplitterTree1d,
    /// Store-and-forward 2D systolic chain (the design the paper
    /// adopts).
    Systolic2d,
}

impl NetworkDesign {
    /// All three candidates.
    pub const ALL: [NetworkDesign; 3] = [
        NetworkDesign::SplitterTree2d,
        NetworkDesign::SplitterTree1d,
        NetworkDesign::Systolic2d,
    ];

    /// Human-readable label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            NetworkDesign::SplitterTree2d => "2D splitter tree",
            NetworkDesign::SplitterTree1d => "1D splitter tree",
            NetworkDesign::Systolic2d => "Systolic array",
        }
    }

    /// Critical-path delay (inverse of maximum frequency) in ps for a
    /// `width × width` PE array.
    ///
    /// The 2D tree's two global trees share one clock, so the data/
    /// clock arrival mismatch at the leaf PEs grows linearly with the
    /// array width (≈13.9 ps of splitter+wire delay per PE pitch); the
    /// 1D tree and the systolic chain have no such accumulation.
    pub fn critical_path_ps(self, width: u32, lib: &CellLibrary) -> f64 {
        let dff = lib.gate(GateKind::Dff);
        let spl = lib.gate(GateKind::Splitter).delay_ps;
        let jtl = lib.gate(GateKind::Jtl).delay_ps;
        let pitch_ps = spl + jtl + 2.0 * jtl; // splitter + wire run per PE pitch
        match self {
            NetworkDesign::SplitterTree2d => {
                let mismatch = f64::from(width) * pitch_ps;
                dff.setup_ps + dff.hold_ps.max(mismatch)
            }
            NetworkDesign::SplitterTree1d => dff.setup_ps + dff.hold_ps + 2.0 * spl,
            NetworkDesign::Systolic2d => dff.setup_ps + dff.hold_ps,
        }
    }

    /// Gate inventory for a `width × width` array with a `bits`-wide
    /// datapath.
    pub fn gates(self, width: u32, bits: u32) -> GateCounts {
        let w = u64::from(width);
        let b = u64::from(bits);
        let mut g = GateCounts::new();
        match self {
            NetworkDesign::Systolic2d => {
                let per_pe = nw_unit_model(bits).gates;
                g.add_scaled(&per_pe, w * w);
            }
            NetworkDesign::SplitterTree1d | NetworkDesign::SplitterTree2d => {
                // Per row: a (width−1)-splitter tree per bit, leaf DFFs,
                // and the long JTL runs that make trees expensive: each
                // of the `w` leaves sits on average `w/2` PE pitches
                // from the root, so a row's run length is ~w²/2 pitches
                // (×w rows), one JTL repeater per pitch.
                let tree_splitters = (w - 1) * b * w;
                let leaf_dffs = w * w * b;
                let jtl_runs = (w * w * w / 2) * b;
                g.add(GateKind::Splitter, tree_splitters);
                g.add(GateKind::Dff, leaf_dffs);
                g.add(
                    GateKind::Jtl,
                    jtl_runs
                        * if self == NetworkDesign::SplitterTree2d {
                            2
                        } else {
                            1
                        },
                );
            }
        }
        g
    }

    /// Area in mm² at the library's native feature size.
    pub fn area_mm2(self, width: u32, bits: u32, lib: &CellLibrary) -> f64 {
        self.gates(width, bits).area_mm2(lib)
    }
}

/// One row of the Fig. 5 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkPoint {
    /// PE-array width.
    pub width: u32,
    /// Which design.
    pub design: NetworkDesign,
    /// Critical-path delay, ps.
    pub critical_path_ps: f64,
    /// Area, mm² (native feature size).
    pub area_mm2: f64,
}

/// Sweep all three designs over the paper's widths {4, 8, 16, 32, 64}.
pub fn fig5_sweep(bits: u32, lib: &CellLibrary) -> Vec<NetworkPoint> {
    let mut out = Vec::new();
    for width in [4u32, 8, 16, 32, 64] {
        for design in NetworkDesign::ALL {
            out.push(NetworkPoint {
                width,
                design,
                critical_path_ps: design.critical_path_ps(width, lib),
                area_mm2: design.area_mm2(width, bits, lib),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn systolic_wins_both_axes_at_64() {
        let lib = CellLibrary::aist_10um();
        let w = 64;
        let sys_d = NetworkDesign::Systolic2d.critical_path_ps(w, &lib);
        let t1_d = NetworkDesign::SplitterTree1d.critical_path_ps(w, &lib);
        let t2_d = NetworkDesign::SplitterTree2d.critical_path_ps(w, &lib);
        assert!(sys_d <= t1_d && sys_d < t2_d);
        let sys_a = NetworkDesign::Systolic2d.area_mm2(w, 8, &lib);
        let t1_a = NetworkDesign::SplitterTree1d.area_mm2(w, 8, &lib);
        let t2_a = NetworkDesign::SplitterTree2d.area_mm2(w, 8, &lib);
        assert!(sys_a < t1_a && sys_a < t2_a);
    }

    #[test]
    fn tree_2d_delay_exceeds_800ps_at_64() {
        // The paper's headline observation in Fig. 5(a).
        let lib = CellLibrary::aist_10um();
        let d = NetworkDesign::SplitterTree2d.critical_path_ps(64, &lib);
        assert!(d > 800.0, "2D tree delay {d:.0} ps");
    }

    #[test]
    fn systolic_delay_flat_in_width() {
        let lib = CellLibrary::aist_10um();
        let d4 = NetworkDesign::Systolic2d.critical_path_ps(4, &lib);
        let d64 = NetworkDesign::Systolic2d.critical_path_ps(64, &lib);
        assert_eq!(d4, d64);
    }

    #[test]
    fn tree_area_about_3x_systolic_at_64() {
        let lib = CellLibrary::aist_10um();
        let ratio = NetworkDesign::SplitterTree1d.area_mm2(64, 8, &lib)
            / NetworkDesign::Systolic2d.area_mm2(64, 8, &lib);
        assert!(
            ratio > 1.8 && ratio < 5.0,
            "tree/systolic area ratio {ratio:.2}"
        );
    }

    #[test]
    fn sweep_covers_15_points() {
        let lib = CellLibrary::aist_10um();
        assert_eq!(fig5_sweep(8, &lib).len(), 15);
    }
}
