//! Clocking schemes and the gate-pair frequency model (paper Eq. 1,
//! Figs. 7 and 11).
//!
//! SFQ circuit frequency is set by the timing difference between data
//! and clock pulse arrival at each clocked gate pair:
//!
//! ```text
//! f = 1 / CCT = 1 / (SetupTime + max(HoldTime, δt)),   δt = τ_data − τ_clock
//! ```
//!
//! *Concurrent-flow* clocking sends the clock along with the data;
//! with clock skewing the δt term can be tuned out entirely, which is
//! why a skewed DFF chain reaches 133 GHz. Circuits with feedback
//! loops cannot use it and fall back to *counter-flow* clocking, whose
//! cycle time must cover the full data + clock round trip — the
//! feedback penalty of Fig. 7(c).

use serde::{Deserialize, Serialize};
use sfq_cells::{CellLibrary, GateKind};

/// How the clock pulse is routed relative to the data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Clocking {
    /// Clock flows with the data and is skew-tuned so that δt ≈ 0
    /// (applies to straight pipelines such as shift-register chains).
    ConcurrentSkewed,
    /// Clock flows with the data without skew tuning: δt is the full
    /// data-vs-clock propagation difference (applies when several data
    /// paths converge and no single skew fits all of them).
    Concurrent,
    /// Clock flows against the data; the next clock pulse must wait
    /// for the full data *and* clock propagation (required by feedback
    /// loops).
    CounterFlow,
}

/// One clocked gate pair: `src` drives `dst` through `data_wire_ps` of
/// wiring while the clock covers `clock_wire_ps` between their taps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairTiming {
    /// Driving gate.
    pub src: GateKind,
    /// Receiving (clocked) gate.
    pub dst: GateKind,
    /// Extra data-path wire delay beyond the source gate delay, ps.
    pub data_wire_ps: f64,
    /// Clock-path delay between the two gates' clock taps, ps.
    pub clock_wire_ps: f64,
    /// Clocking scheme applied to this pair.
    pub clocking: Clocking,
}

impl PairTiming {
    /// Clock-cycle time of the pair in picoseconds (paper Eq. 1).
    pub fn cct_ps(&self, lib: &CellLibrary) -> f64 {
        let src = lib.gate(self.src);
        let dst = lib.gate(self.dst);
        let tau_data = src.delay_ps + self.data_wire_ps;
        match self.clocking {
            Clocking::ConcurrentSkewed => dst.setup_ps + dst.hold_ps,
            Clocking::Concurrent => {
                let dt = (tau_data - self.clock_wire_ps).max(0.0);
                dst.setup_ps + dst.hold_ps.max(dt)
            }
            Clocking::CounterFlow => dst.setup_ps + dst.hold_ps + tau_data + self.clock_wire_ps,
        }
    }

    /// Maximum clock frequency of the pair in GHz.
    pub fn frequency_ghz(&self, lib: &CellLibrary) -> f64 {
        1000.0 / self.cct_ps(lib)
    }
}

/// Result rows of the paper's Fig. 7(c): full adder and shift register
/// with and without a feedback loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackComparison {
    /// Full-adder frequency under concurrent-flow clocking (no
    /// feedback loop), GHz. Paper: ≈66 GHz.
    pub fa_feedforward_ghz: f64,
    /// Full-adder frequency with an accumulation feedback loop
    /// (counter-flow), GHz. Paper: ≈30 GHz.
    pub fa_feedback_ghz: f64,
    /// Shift-register frequency, concurrent skew-tuned (no feedback),
    /// GHz. Paper: ≈133 GHz.
    pub sr_feedforward_ghz: f64,
    /// Shift-register frequency with a recirculation feedback path
    /// (counter-flow), GHz. Paper: ≈71 GHz.
    pub sr_feedback_ghz: f64,
}

/// The canonical pair models behind Fig. 7(c).
pub fn feedback_comparison(lib: &CellLibrary) -> FeedbackComparison {
    let jtl = lib.gate(GateKind::Jtl).delay_ps;
    let spl = lib.gate(GateKind::Splitter).delay_ps;
    let mrg = lib.gate(GateKind::Merger).delay_ps;

    // Full adder, feed-forward: XOR -> XOR through a splitter hop;
    // converging carry/sum paths prevent skew tuning.
    let fa_ff = PairTiming {
        src: GateKind::Xor,
        dst: GateKind::Xor,
        data_wire_ps: spl,
        clock_wire_ps: 0.0,
        clocking: Clocking::Concurrent,
    };
    // Full adder, feedback (accumulator): the carry loop traverses
    // AND, XOR, a merger and a JTL before re-entering the adder.
    let fa_fb = PairTiming {
        src: GateKind::And,
        dst: GateKind::Xor,
        data_wire_ps: lib.gate(GateKind::Xor).delay_ps + mrg + jtl,
        clock_wire_ps: jtl,
        clocking: Clocking::CounterFlow,
    };
    // Shift register, feed-forward: DFF -> DFF, skew-tuned.
    let sr_ff = PairTiming {
        src: GateKind::Dff,
        dst: GateKind::Dff,
        data_wire_ps: 0.0,
        clock_wire_ps: 0.0,
        clocking: Clocking::ConcurrentSkewed,
    };
    // Shift register with recirculation: counter-flow clocked DFF
    // chain; clock tap hop is a half-JTL.
    let sr_fb = PairTiming {
        src: GateKind::Dff,
        dst: GateKind::Dff,
        data_wire_ps: 0.0,
        clock_wire_ps: 0.5 * jtl,
        clocking: Clocking::CounterFlow,
    };
    FeedbackComparison {
        fa_feedforward_ghz: fa_ff.frequency_ghz(lib),
        fa_feedback_ghz: fa_fb.frequency_ghz(lib),
        sr_feedforward_ghz: sr_ff.frequency_ghz(lib),
        sr_feedback_ghz: sr_fb.frequency_ghz(lib),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_cells::CellLibrary;

    #[test]
    fn skewed_pair_hits_setup_plus_hold() {
        let lib = CellLibrary::aist_10um();
        let p = PairTiming {
            src: GateKind::Dff,
            dst: GateKind::Dff,
            data_wire_ps: 10.0,
            clock_wire_ps: 0.0,
            clocking: Clocking::ConcurrentSkewed,
        };
        let d = lib.gate(GateKind::Dff);
        assert!((p.cct_ps(&lib) - (d.setup_ps + d.hold_ps)).abs() < 1e-12);
    }

    #[test]
    fn counterflow_pays_round_trip() {
        let lib = CellLibrary::aist_10um();
        let base = PairTiming {
            src: GateKind::Dff,
            dst: GateKind::Dff,
            data_wire_ps: 0.0,
            clock_wire_ps: 0.0,
            clocking: Clocking::ConcurrentSkewed,
        };
        let cf = PairTiming {
            clocking: Clocking::CounterFlow,
            ..base
        };
        assert!(cf.cct_ps(&lib) > base.cct_ps(&lib));
    }

    #[test]
    fn concurrent_delta_t_clamped_nonnegative() {
        let lib = CellLibrary::aist_10um();
        // Clock slower than data: δt clamps to 0, hold dominates.
        let p = PairTiming {
            src: GateKind::Dff,
            dst: GateKind::Dff,
            data_wire_ps: 0.0,
            clock_wire_ps: 100.0,
            clocking: Clocking::Concurrent,
        };
        let d = lib.gate(GateKind::Dff);
        assert!((p.cct_ps(&lib) - (d.setup_ps + d.hold_ps)).abs() < 1e-12);
    }

    #[test]
    fn fig7c_shape_and_magnitudes() {
        let lib = CellLibrary::aist_10um();
        let f = feedback_comparison(&lib);
        // Feedback always costs frequency.
        assert!(f.fa_feedforward_ghz > f.fa_feedback_ghz);
        assert!(f.sr_feedforward_ghz > f.sr_feedback_ghz);
        // Paper values: 66→30 GHz (FA), 133→71 GHz (SR). Allow ±20%.
        let close = |got: f64, want: f64| (got - want).abs() / want < 0.2;
        assert!(
            close(f.fa_feedforward_ghz, 66.0),
            "FA ff {:.1}",
            f.fa_feedforward_ghz
        );
        assert!(
            close(f.fa_feedback_ghz, 30.0),
            "FA fb {:.1}",
            f.fa_feedback_ghz
        );
        assert!(
            close(f.sr_feedforward_ghz, 133.0),
            "SR ff {:.1}",
            f.sr_feedforward_ghz
        );
        assert!(
            close(f.sr_feedback_ghz, 71.0),
            "SR fb {:.1}",
            f.sr_feedback_ghz
        );
    }
}
