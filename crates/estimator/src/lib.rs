//! # sfq-estimator
//!
//! The architecture-modeling half of the SuperNPU framework: given a
//! characterized cell library ([`sfq_cells::CellLibrary`]) and an NPU
//! configuration, estimate clock frequency, static power, per-access
//! switching energy and chip area at three abstraction levels, exactly
//! as the paper's *SFQ-NPU estimator* does (§IV-A):
//!
//! 1. **gate level** — per-cell timing/power/area from the library,
//! 2. **microarchitecture level** — structure models of the PE, the
//!    on-chip network unit, the data-alignment unit (DAU) and the
//!    shift-register buffers produce gate counts and intra-unit gate
//!    pairs; the pair with the slowest clock-cycle time
//!    `CCT = SetupTime + max(HoldTime, δt)` (paper Eq. 1) sets the
//!    unit frequency,
//! 3. **architecture level** — unit counts plus inter-unit pairs give
//!    the NPU frequency, power and area ([`NpuEstimate`]).
//!
//! The crate also carries the paper's two design studies that sit at
//! this level: the on-chip network comparison of Fig. 5
//! ([`netdesign`]) and the feedback/clocking frequency comparison of
//! Fig. 7(c) ([`clocking::feedback_comparison`]).
//!
//! # Example
//!
//! ```
//! use sfq_cells::CellLibrary;
//! use sfq_estimator::{NpuConfig, estimate};
//!
//! let lib = CellLibrary::aist_10um();
//! let est = estimate(&NpuConfig::paper_baseline(), &lib);
//! // The paper's Table I reports 52.6 GHz for this configuration.
//! assert!(est.frequency_ghz > 45.0 && est.frequency_ghz < 60.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clocking;
pub mod clocktree;
pub mod floorplan;
pub mod netdesign;
mod npu;
mod structure;
pub mod units;

pub use npu::{
    clear_estimate_cache, estimate, estimate_cache_stats, estimate_uncached, estimate_with_budget,
    NpuConfig, NpuEstimate, UnitBreakdown,
};
pub use structure::{GateCounts, GatePair, UnitModel};
