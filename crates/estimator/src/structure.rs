//! Gate-count bookkeeping shared by all microarchitecture models.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use sfq_cells::{CellLibrary, GateKind};

use crate::clocking::PairTiming;

/// A multiset of gates.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GateCounts(BTreeMap<GateKind, u64>);

impl GateCounts {
    /// Empty counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` instances of `kind`.
    pub fn add(&mut self, kind: GateKind, n: u64) -> &mut Self {
        *self.0.entry(kind).or_insert(0) += n;
        self
    }

    /// Merge another multiset scaled by `factor` instances.
    pub fn add_scaled(&mut self, other: &GateCounts, factor: u64) -> &mut Self {
        for (&k, &n) in &other.0 {
            *self.0.entry(k).or_insert(0) += n * factor;
        }
        self
    }

    /// Count of one gate kind.
    pub fn count(&self, kind: GateKind) -> u64 {
        self.0.get(&kind).copied().unwrap_or(0)
    }

    /// Total gates.
    pub fn total(&self) -> u64 {
        self.0.values().sum()
    }

    /// Total Josephson junctions.
    pub fn jj_total(&self, lib: &CellLibrary) -> u64 {
        self.0
            .iter()
            .map(|(&k, &n)| n * u64::from(lib.gate(k).jj_count))
            .sum()
    }

    /// Static power in watts under the library's bias scheme.
    pub fn static_w(&self, lib: &CellLibrary) -> f64 {
        self.0
            .iter()
            .map(|(&k, &n)| n as f64 * lib.gate(k).static_uw * 1e-6)
            .sum()
    }

    /// Area in mm² at the library's native feature size.
    pub fn area_mm2(&self, lib: &CellLibrary) -> f64 {
        let um2: f64 = self
            .0
            .iter()
            .map(|(&k, &n)| n as f64 * lib.gate_area_um2(k))
            .sum();
        um2 * 1e-6
    }

    /// Energy in joules if *every* gate in the multiset switches once
    /// (callers scale by an activity factor).
    pub fn full_switch_energy_j(&self, lib: &CellLibrary) -> f64 {
        self.0
            .iter()
            .map(|(&k, &n)| n as f64 * lib.gate(k).energy_aj * 1e-18)
            .sum()
    }

    /// Iterate entries.
    pub fn iter(&self) -> impl Iterator<Item = (GateKind, u64)> + '_ {
        self.0.iter().map(|(&k, &n)| (k, n))
    }
}

/// Convenience alias re-exported at the crate root.
pub type GatePair = PairTiming;

/// A characterized microarchitectural unit: its gate inventory, the
/// clocked gate pairs that bound its frequency, and the fraction of
/// its gates that switch on a typical access (drives dynamic energy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitModel {
    /// Unit name (for reports).
    pub name: String,
    /// Gate inventory.
    pub gates: GateCounts,
    /// Intra-unit clocked pairs.
    pub pairs: Vec<PairTiming>,
    /// Fraction of the unit's gates that switch per access (0..=1).
    pub activity: f64,
}

impl UnitModel {
    /// Unit clock frequency in GHz: the slowest intra-unit pair.
    /// Units with no clocked pairs (pure wiring) return `None`.
    pub fn frequency_ghz(&self, lib: &CellLibrary) -> Option<f64> {
        self.pairs
            .iter()
            .map(|p| p.frequency_ghz(lib))
            .min_by(f64::total_cmp)
    }

    /// Energy per access in joules: activity × full-switch energy.
    pub fn access_energy_j(&self, lib: &CellLibrary) -> f64 {
        self.activity * self.gates.full_switch_energy_j(lib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clocking::Clocking;
    use sfq_cells::CellLibrary;

    #[test]
    fn counts_accumulate_and_scale() {
        let mut a = GateCounts::new();
        a.add(GateKind::Dff, 4).add(GateKind::And, 2);
        let mut b = GateCounts::new();
        b.add_scaled(&a, 3);
        assert_eq!(b.count(GateKind::Dff), 12);
        assert_eq!(b.count(GateKind::And), 6);
        assert_eq!(b.total(), 18);
    }

    #[test]
    fn static_power_and_area_scale_linearly() {
        let lib = CellLibrary::aist_10um();
        let mut one = GateCounts::new();
        one.add(GateKind::Dff, 1);
        let mut many = GateCounts::new();
        many.add(GateKind::Dff, 1000);
        assert!((many.static_w(&lib) - 1000.0 * one.static_w(&lib)).abs() < 1e-12);
        assert!((many.area_mm2(&lib) - 1000.0 * one.area_mm2(&lib)).abs() < 1e-12);
        assert_eq!(many.jj_total(&lib), 1000 * one.jj_total(&lib));
    }

    #[test]
    fn unit_frequency_is_min_over_pairs() {
        let lib = CellLibrary::aist_10um();
        let fast = PairTiming {
            src: GateKind::Dff,
            dst: GateKind::Dff,
            data_wire_ps: 0.0,
            clock_wire_ps: 0.0,
            clocking: Clocking::ConcurrentSkewed,
        };
        let slow = PairTiming {
            clocking: Clocking::CounterFlow,
            ..fast
        };
        let unit = UnitModel {
            name: "t".into(),
            gates: GateCounts::new(),
            pairs: vec![fast, slow],
            activity: 0.5,
        };
        let f = unit.frequency_ghz(&lib).unwrap();
        assert!((f - slow.frequency_ghz(&lib)).abs() < 1e-12);
    }

    #[test]
    fn access_energy_uses_activity() {
        let lib = CellLibrary::aist_10um();
        let mut gates = GateCounts::new();
        gates.add(GateKind::And, 10);
        let unit = UnitModel {
            name: "t".into(),
            gates: gates.clone(),
            pairs: vec![],
            activity: 0.5,
        };
        assert!(
            (unit.access_energy_j(&lib) - 0.5 * gates.full_switch_energy_j(&lib)).abs() < 1e-30
        );
        assert!(unit.frequency_ghz(&lib).is_none());
    }
}
