//! Chip floorplanning for the architecture-level layer (§IV-A.3):
//! "based on the estimated unit-to-unit distance, we calculate the
//! area of wire cells required to connect each unit and include it to
//! the final area estimation".
//!
//! The layout follows the paper's Fig. 3: the ifmap buffer and DAU sit
//! left of the PE array, the weight buffer above it, and the output
//! (psum/ofmap) buffers to its right. Block geometry comes from the
//! unit areas; inter-unit links are passive transmission lines whose
//! *latency* does not bound the clock (PTLs hold several pulses in
//! flight — §II-B.2), but whose residual data-vs-clock skew after
//! co-routing does.

use serde::{Deserialize, Serialize};

/// One placed block, dimensions in millimeters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Unit name.
    pub name: String,
    /// Lower-left x, mm.
    pub x: f64,
    /// Lower-left y, mm.
    pub y: f64,
    /// Width, mm.
    pub w: f64,
    /// Height, mm.
    pub h: f64,
}

impl Block {
    /// Center coordinates, mm.
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Block area, mm².
    pub fn area_mm2(&self) -> f64 {
        self.w * self.h
    }
}

/// A placed chip: blocks plus derived wiring figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    /// Placed blocks.
    pub blocks: Vec<Block>,
    /// Total inter-unit link length, mm (sum over the dataflow links).
    pub wire_length_mm: f64,
    /// Die width, mm.
    pub die_w: f64,
    /// Die height, mm.
    pub die_h: f64,
}

/// Residual data-vs-clock skew of a co-routed PTL link, ps per mm.
/// Co-routing matches the two paths to within a few percent; the
/// default assumes ~0.1 ps of mismatch accumulates per millimeter.
pub const PTL_SKEW_PS_PER_MM: f64 = 0.1;

/// One-way PTL propagation delay, ps per mm (pulse velocity ≈ c/3).
pub const PTL_DELAY_PS_PER_MM: f64 = 10.0;

/// Effective wiring-channel width charged per inter-unit link, mm
/// (a bundle of PTL tracks plus repeaters).
pub const WIRE_CHANNEL_MM: f64 = 0.05;

/// Unit areas that feed the floorplan, mm² at one process node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitAreas {
    /// PE array total.
    pub pe_array: f64,
    /// On-chip network total.
    pub network: f64,
    /// DAU.
    pub dau: f64,
    /// Ifmap buffer.
    pub ifmap: f64,
    /// Output (ofmap + psum) buffers.
    pub output: f64,
    /// Weight buffer.
    pub weight: f64,
}

impl UnitAreas {
    /// Sum of the block areas.
    pub fn total(&self) -> f64 {
        self.pe_array + self.network + self.dau + self.ifmap + self.output + self.weight
    }
}

impl Floorplan {
    /// Place the Fig. 3 layout: `[ifmap | DAU | PE+NW | output]` as a
    /// row, with the weight buffer spanning the top.
    ///
    /// # Panics
    ///
    /// Panics if any area is negative or all are zero.
    pub fn place(areas: &UnitAreas) -> Floorplan {
        assert!(areas.total() > 0.0, "cannot floorplan a zero-area chip");
        let core = areas.pe_array + areas.network;
        // Row height: make the core block roughly square.
        let row_h = core.sqrt().max(1e-6);
        let strip = |area: f64| area / row_h;

        let w_ifmap = strip(areas.ifmap);
        let w_dau = strip(areas.dau);
        let w_core = strip(core);
        let w_output = strip(areas.output);
        let row_w = w_ifmap + w_dau + w_core + w_output;
        let weight_h = areas.weight / row_w.max(1e-9);

        let mut x = 0.0;
        let block = |name: &str, w: f64, y: f64, h: f64, x: &mut f64| {
            let b = Block {
                name: name.to_owned(),
                x: *x,
                y,
                w,
                h,
            };
            *x += w;
            b
        };
        let blocks = vec![
            block("ifmap", w_ifmap, 0.0, row_h, &mut x),
            block("dau", w_dau, 0.0, row_h, &mut x),
            block("pe_array", w_core, 0.0, row_h, &mut x),
            block("output", w_output, 0.0, row_h, &mut x),
            Block {
                name: "weight".to_owned(),
                x: 0.0,
                y: row_h,
                w: row_w,
                h: weight_h,
            },
        ];

        // Dataflow links (Fig. 3 arrows): ifmap→DAU, DAU→PE, weight→PE,
        // PE→output.
        let dist = |a: &Block, b: &Block| {
            let (ax, ay) = a.center();
            let (bx, by) = b.center();
            (ax - bx).abs() + (ay - by).abs()
        };
        let find = |name: &str| {
            blocks
                .iter()
                .find(|b| b.name == name)
                .unwrap_or_else(|| unreachable!("block {name} was placed above"))
        };
        let wire_length_mm = dist(find("ifmap"), find("dau"))
            + dist(find("dau"), find("pe_array"))
            + dist(find("weight"), find("pe_array"))
            + dist(find("pe_array"), find("output"));

        Floorplan {
            blocks,
            wire_length_mm,
            die_w: row_w,
            die_h: row_h + weight_h,
        }
    }

    /// Die area, mm².
    pub fn die_area_mm2(&self) -> f64 {
        self.die_w * self.die_h
    }

    /// Extra area charged to inter-unit wiring channels, mm².
    pub fn wiring_area_mm2(&self) -> f64 {
        self.wire_length_mm * WIRE_CHANNEL_MM
    }

    /// Longest single link, mm.
    pub fn longest_link_mm(&self) -> f64 {
        // The weight→PE and ifmap→DAU links bracket the extremes; use
        // the conservative estimate of half the die semi-perimeter.
        0.5 * (self.die_w + self.die_h) / 2.0
    }

    /// Residual data-vs-clock skew on the longest inter-unit link, ps.
    pub fn inter_unit_skew_ps(&self) -> f64 {
        self.longest_link_mm() * PTL_SKEW_PS_PER_MM
    }

    /// One-way latency of the longest link, ps (pipelined — informs
    /// fill latency, not clock rate).
    pub fn inter_unit_latency_ps(&self) -> f64 {
        self.longest_link_mm() * PTL_DELAY_PS_PER_MM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn areas() -> UnitAreas {
        UnitAreas {
            pe_array: 40.0,
            network: 10.0,
            dau: 5.0,
            ifmap: 30.0,
            output: 30.0,
            weight: 2.0,
        }
    }

    #[test]
    fn blocks_cover_requested_areas() {
        let a = areas();
        let fp = Floorplan::place(&a);
        let sum: f64 = fp.blocks.iter().map(Block::area_mm2).sum();
        assert!((sum - a.total()).abs() / a.total() < 1e-9);
        // Die bounds every block.
        for b in &fp.blocks {
            assert!(b.x + b.w <= fp.die_w + 1e-9, "{}", b.name);
            assert!(b.y + b.h <= fp.die_h + 1e-9, "{}", b.name);
        }
    }

    #[test]
    fn blocks_do_not_overlap() {
        let fp = Floorplan::place(&areas());
        for (i, a) in fp.blocks.iter().enumerate() {
            for b in fp.blocks.iter().skip(i + 1) {
                let overlap_x = (a.x + a.w).min(b.x + b.w) - a.x.max(b.x);
                let overlap_y = (a.y + a.h).min(b.y + b.h) - a.y.max(b.y);
                assert!(
                    overlap_x <= 1e-9 || overlap_y <= 1e-9,
                    "{} overlaps {}",
                    a.name,
                    b.name
                );
            }
        }
    }

    #[test]
    fn wiring_scales_with_die_size() {
        let small = Floorplan::place(&areas());
        let mut big = areas();
        big.pe_array *= 4.0;
        big.ifmap *= 4.0;
        big.output *= 4.0;
        let big = Floorplan::place(&big);
        assert!(big.wire_length_mm > small.wire_length_mm);
        assert!(big.wiring_area_mm2() > small.wiring_area_mm2());
        assert!(big.inter_unit_skew_ps() > small.inter_unit_skew_ps());
    }

    #[test]
    fn skew_stays_below_clock_budget_for_chip_scale_dies() {
        // Even a 25 x 25 mm die accumulates only ~1-2 ps of residual
        // skew: inter-unit links do not bound the 19 ps cycle.
        let mut a = areas();
        let scale = (625.0 / a.total()).sqrt();
        a.pe_array *= scale * scale;
        a.ifmap *= scale * scale;
        a.output *= scale * scale;
        let fp = Floorplan::place(&a);
        assert!(
            fp.inter_unit_skew_ps() < 5.0,
            "skew {:.2} ps",
            fp.inter_unit_skew_ps()
        );
    }

    #[test]
    #[should_panic(expected = "zero-area")]
    fn zero_chip_panics() {
        let _ = Floorplan::place(&UnitAreas {
            pe_array: 0.0,
            network: 0.0,
            dau: 0.0,
            ifmap: 0.0,
            output: 0.0,
            weight: 0.0,
        });
    }
}
