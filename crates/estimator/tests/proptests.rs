//! Property-based tests of the estimator's structural models.

use proptest::prelude::*;
use sfq_cells::{CellLibrary, GateKind};
use sfq_estimator::clocking::{Clocking, PairTiming};
use sfq_estimator::units::{buffer_model, dau_model, nw_unit_model, pe_model, BufferConfig};
use sfq_estimator::{estimate, GateCounts, NpuConfig};

fn npu_config() -> impl Strategy<Value = NpuConfig> {
    (
        prop_oneof![Just(16u32), Just(64), Just(256)],
        prop_oneof![Just(64u32), Just(128), Just(256)],
        1u32..=8,
        prop_oneof![Just(1u32), Just(64), Just(1024)],
        1u64..=32,
        any::<bool>(),
    )
        .prop_map(|(w, h, regs, division, mb, integrated)| NpuConfig {
            name: "prop".into(),
            array_width: w,
            array_height: h,
            regs_per_pe: regs,
            division,
            ifmap_buf_bytes: mb * 1024 * 1024,
            output_buf_bytes: mb * 1024 * 1024,
            psum_buf_bytes: if integrated { 0 } else { mb * 1024 * 1024 },
            integrated_output: integrated,
            ..NpuConfig::paper_baseline()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Gate-count arithmetic is linear.
    #[test]
    fn gate_counts_linear(n in 1u64..1000, m in 1u64..50) {
        let lib = CellLibrary::aist_10um();
        let mut one = GateCounts::new();
        one.add(GateKind::And, n).add(GateKind::Dff, n / 2 + 1);
        let mut many = GateCounts::new();
        many.add_scaled(&one, m);
        prop_assert_eq!(many.total(), m * one.total());
        prop_assert_eq!(many.jj_total(&lib), m * one.jj_total(&lib));
        prop_assert!((many.static_w(&lib) - m as f64 * one.static_w(&lib)).abs() < 1e-9);
    }

    /// CCT is always at least setup + hold, for every scheme.
    #[test]
    fn cct_lower_bound(
        data_wire in 0.0f64..50.0,
        clock_wire in 0.0f64..50.0,
        scheme in prop_oneof![
            Just(Clocking::ConcurrentSkewed),
            Just(Clocking::Concurrent),
            Just(Clocking::CounterFlow)
        ],
    ) {
        let lib = CellLibrary::aist_10um();
        let p = PairTiming {
            src: GateKind::Dff,
            dst: GateKind::And,
            data_wire_ps: data_wire,
            clock_wire_ps: clock_wire,
            clocking: scheme,
        };
        let g = lib.gate(GateKind::And);
        prop_assert!(p.cct_ps(&lib) >= g.setup_ps + g.hold_ps - 1e-12);
        // Counter-flow is never faster than skewed concurrent.
        let skewed = PairTiming { clocking: Clocking::ConcurrentSkewed, ..p };
        let counter = PairTiming { clocking: Clocking::CounterFlow, ..p };
        prop_assert!(counter.cct_ps(&lib) >= skewed.cct_ps(&lib));
    }

    /// Unit models scale sanely: gates, area and static power are
    /// positive and finite for every geometry.
    #[test]
    fn unit_models_positive(bits in 1u32..=16, regs in 1u32..=16, rows in 2u32..=256) {
        let lib = CellLibrary::aist_10um();
        for unit in [pe_model(bits, regs), nw_unit_model(bits), dau_model(rows, bits)] {
            prop_assert!(unit.gates.total() > 0, "{}", unit.name);
            prop_assert!(unit.gates.area_mm2(&lib) > 0.0);
            prop_assert!(unit.gates.static_w(&lib).is_finite());
            prop_assert!(unit.access_energy_j(&lib) > 0.0);
        }
    }

    /// Buffer chunk length halves (or better) when division doubles.
    #[test]
    fn chunk_entries_monotone(mb in 1u64..=64, division in 1u32..=1024) {
        let cfg = BufferConfig {
            capacity_bytes: mb * 1024 * 1024,
            rows: 256,
            bits: 8,
            division,
        };
        let cfg2 = BufferConfig { division: division * 2, ..cfg };
        prop_assert!(cfg2.chunk_entries() <= cfg.chunk_entries());
        prop_assert!(cfg.chunk_entries() >= 1);
    }

    /// Whole-NPU estimation is total and physically sane for any valid
    /// configuration.
    #[test]
    fn estimate_total_and_sane(cfg in npu_config()) {
        let lib = CellLibrary::aist_10um();
        let est = estimate(&cfg, &lib);
        prop_assert!(est.frequency_ghz > 10.0 && est.frequency_ghz < 200.0);
        prop_assert!(est.static_w > 0.0 && est.static_w.is_finite());
        prop_assert!(est.area_mm2_native > 0.0);
        prop_assert!(est.jj_total > 0);
        prop_assert!((est.peak_tmacs
            - cfg.pe_count() as f64 * est.frequency_ghz * 1e9 / 1e12).abs() < 1e-6);
        // Breakdown consistency.
        let sum: f64 = est.units.iter().map(|u| u.static_w).sum();
        prop_assert!((sum - est.static_w).abs() < 1e-6);
    }

    /// Larger buffers can only add junctions and static power.
    #[test]
    fn bigger_buffers_cost_more(mb in 1u64..=32) {
        let lib = CellLibrary::aist_10um();
        let small = buffer_model("b", BufferConfig {
            capacity_bytes: mb * 1024 * 1024, rows: 256, bits: 8, division: 64 });
        let large = buffer_model("b", BufferConfig {
            capacity_bytes: 2 * mb * 1024 * 1024, rows: 256, bits: 8, division: 64 });
        prop_assert!(large.gates.jj_total(&lib) > small.gates.jj_total(&lib));
        prop_assert!(large.gates.static_w(&lib) > small.gates.static_w(&lib));
    }
}
