//! Latency/throughput trade-off: the paper maximizes throughput by
//! batching to buffer capacity, which costs per-image latency —
//! the axis a serving deployment cares about.

use dnn_models::Network;
use serde::{Deserialize, Serialize};
use sfq_npu_sim::{simulate_network_with_batch, structural_max_batch, SimConfig};

/// One batch point of the latency/throughput curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyPoint {
    /// Input batch.
    pub batch: u32,
    /// Wall-clock latency of the whole batch, milliseconds.
    pub batch_latency_ms: f64,
    /// Per-image latency, milliseconds.
    pub image_latency_ms: f64,
    /// Sustained throughput, images/s.
    pub images_per_s: f64,
    /// Sustained throughput, TMAC/s.
    pub tmacs: f64,
}

/// Sweep batch sizes from 1 up to the structural maximum (powers of
/// two plus the maximum itself).
pub fn latency_curve(cfg: &SimConfig, net: &Network) -> Vec<LatencyPoint> {
    let max_batch = structural_max_batch(&cfg.npu, net);
    let mut batches: Vec<u32> = std::iter::successors(Some(1u32), |b| Some(b * 2))
        .take_while(|b| *b < max_batch)
        .collect();
    batches.push(max_batch);

    batches
        .into_iter()
        .map(|batch| {
            let s = simulate_network_with_batch(cfg, net, batch);
            let t_ms = s.time_s() * 1e3;
            LatencyPoint {
                batch,
                batch_latency_ms: t_ms,
                image_latency_ms: t_ms, // all images finish together
                images_per_s: s.images_per_s(),
                tmacs: s.effective_tmacs(),
            }
        })
        .collect()
}

/// The knee of the curve: the smallest batch achieving at least
/// `fraction` (e.g. 0.9) of the maximum-batch throughput.
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1]` or the curve is empty.
pub fn knee(curve: &[LatencyPoint], fraction: f64) -> &LatencyPoint {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0,1]"
    );
    assert!(!curve.is_empty(), "empty curve");
    let best = curve.iter().map(|p| p.images_per_s).fold(0.0f64, f64::max);
    curve
        .iter()
        .find(|p| p.images_per_s >= fraction * best)
        .unwrap_or_else(|| unreachable!("some point reaches the fraction of its own maximum"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::zoo;

    #[test]
    fn throughput_monotone_latency_grows() {
        let cfg = SimConfig::paper_supernpu();
        let curve = latency_curve(&cfg, &zoo::resnet50());
        assert!(curve.len() >= 3);
        for pair in curve.windows(2) {
            assert!(pair[1].batch > pair[0].batch);
            assert!(pair[1].images_per_s >= pair[0].images_per_s * 0.999);
            assert!(pair[1].batch_latency_ms >= pair[0].batch_latency_ms * 0.999);
        }
        // The last point is the Table II batch.
        assert_eq!(curve.last().unwrap().batch, 30);
    }

    #[test]
    fn knee_is_below_max_batch() {
        // Half the throughput arrives well before batch 30 — useful
        // for latency-sensitive serving (full throughput does need the
        // full batch: prep amortization keeps paying to the end).
        let cfg = SimConfig::paper_supernpu();
        let curve = latency_curve(&cfg, &zoo::googlenet());
        let k = knee(&curve, 0.5);
        assert!(k.batch <= 16, "knee at batch {}", k.batch);
        let k9 = knee(&curve, 0.9);
        assert!(k9.batch <= 30);
    }

    #[test]
    fn sub_millisecond_resnet_inference() {
        // A 52.6 GHz NPU finishes single-image ResNet-50 in well under
        // a millisecond.
        let cfg = SimConfig::paper_supernpu();
        let curve = latency_curve(&cfg, &zoo::resnet50());
        assert!(
            curve[0].image_latency_ms < 1.0,
            "{} ms",
            curve[0].image_latency_ms
        );
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        let cfg = SimConfig::paper_supernpu();
        let curve = latency_curve(&cfg, &zoo::alexnet());
        let _ = knee(&curve, 0.0);
    }
}
