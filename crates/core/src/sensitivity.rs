//! Sensitivity studies beyond the paper's figures, grounded in its
//! discussion sections:
//!
//! * **memory bandwidth** — the paper fixes 300 GB/s (TPUv2 HBM) and
//!   notes the SFQ machine is bandwidth-starved; how much of the
//!   23× would survive slower links, and what faster ones buy,
//! * **process scaling** — footnote 2 cites the RSFQ rule that clock
//!   scales ∝ 1/feature-size down to 200 nm; what SuperNPU becomes on
//!   hypothetical finer processes,
//! * **cooling temperature** — §VI-C's 400× overhead is specific to
//!   4 K; perf/W across cold-stage temperatures at a fixed fraction
//!   of Carnot.

use dnn_models::Network;
use serde::{Deserialize, Serialize};
use sfq_cells::scaling;
use sfq_par::par_map;

use crate::designs::DesignPoint;
use crate::evaluator::{geomean, geomean_tmacs_over, paper_workloads};
use crate::resilient::{run_resilient, sweep_identity, ResilientOpts, SweepError, SweepReport};

use sfq_npu_sim::SimConfig;

fn geomean_tmacs(cfg: &SimConfig, nets: &[Network]) -> f64 {
    geomean_tmacs_over(cfg, nets, false)
}

/// One bandwidth point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthPoint {
    /// Link bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// SuperNPU geomean TMAC/s.
    pub supernpu_tmacs: f64,
    /// TPU geomean TMAC/s at the same link.
    pub tpu_tmacs: f64,
}

impl BandwidthPoint {
    /// SuperNPU speed-up over the TPU at this link.
    pub fn speedup(&self) -> f64 {
        self.supernpu_tmacs / self.tpu_tmacs
    }
}

/// The link bandwidths swept (GB/s; 300 is the paper's operating
/// point).
const BANDWIDTH_LINKS: [f64; 6] = [75.0, 150.0, 300.0, 600.0, 1200.0, 2400.0];

fn bandwidth_point(nets: &[Network], bw: f64) -> BandwidthPoint {
    let mut sfq = DesignPoint::SuperNpu.sim_config();
    sfq.mem_bandwidth_gbs = bw;
    let mut tpu = scale_sim::CmosNpuConfig::tpu_core();
    tpu.mem_bandwidth_gbs = bw;
    let tpu_tmacs = geomean(
        &nets
            .iter()
            .map(|n| scale_sim::simulate_network(&tpu, n).effective_tmacs())
            .collect::<Vec<_>>(),
    );
    BandwidthPoint {
        bandwidth_gbs: bw,
        supernpu_tmacs: geomean_tmacs(&sfq, nets),
        tpu_tmacs,
    }
}

/// Sweep the off-chip bandwidth for both machines.
pub fn bandwidth_sweep() -> Vec<BandwidthPoint> {
    let _trace = sfq_obs::trace::span("sweep", "bandwidth sweep");
    let nets = paper_workloads();
    par_map(&BANDWIDTH_LINKS, |&bw| bandwidth_point(&nets, bw))
}

/// [`bandwidth_sweep`] under execution guards: budgeted, retried,
/// labeled and checkpointable via
/// [`crate::resilient::run_resilient`].
///
/// # Errors
///
/// Checkpoint-layer trouble only; see [`SweepError`].
pub fn bandwidth_sweep_resilient(
    opts: &ResilientOpts,
) -> Result<SweepReport<BandwidthPoint>, SweepError> {
    let _trace = sfq_obs::trace::span("sweep", "bandwidth sweep (resilient)");
    let nets = paper_workloads();
    let eval = |i: usize| bandwidth_point(&nets, BANDWIDTH_LINKS[i]);
    let ident: Vec<u64> = BANDWIDTH_LINKS.iter().map(|b| b.to_bits()).collect();
    let eval = &eval;
    run_resilient(
        "bandwidth",
        sweep_identity(&ident),
        BANDWIDTH_LINKS.len(),
        opts,
        eval,
        Some(eval),
    )
}

/// One process-node point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessPoint {
    /// Junction feature size, µm.
    pub feature_um: f64,
    /// Scaled clock, GHz.
    pub frequency_ghz: f64,
    /// SuperNPU geomean TMAC/s.
    pub supernpu_tmacs: f64,
}

/// Scale SuperNPU's clock with the Kadin et al. rule (∝ 1/λ down to
/// 200 nm) and re-simulate: the memory wall, not the junctions, caps
/// the gains.
pub fn process_sweep() -> Vec<ProcessPoint> {
    let _trace = sfq_obs::trace::span("sweep", "process sweep");
    let base = DesignPoint::SuperNpu.sim_config();
    let nets = paper_workloads();
    let features = [1.0f64, 0.8, 0.5, 0.35, 0.2, 0.1];
    par_map(&features, |&feature| {
        let factor = scaling::frequency_factor(1.0, feature);
        let mut cfg = base.clone();
        cfg.frequency_ghz = base.frequency_ghz * factor;
        ProcessPoint {
            feature_um: feature,
            frequency_ghz: cfg.frequency_ghz,
            supernpu_tmacs: geomean_tmacs(&cfg, &nets),
        }
    })
}

/// One cooling point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolingPoint {
    /// Cold-stage temperature, kelvin.
    pub temperature_k: f64,
    /// Wall-power overhead factor.
    pub overhead: f64,
    /// ERSFQ-SuperNPU perf/W relative to the TPU, cooling included.
    pub perf_per_watt_vs_tpu: f64,
}

/// Perf/W vs cold-stage temperature at ~18% of Carnot (the fraction
/// that reproduces the paper's 400× at 4 K). SFQ circuits need ≲5 K,
/// so warmer rows are hypothetical-technology what-ifs.
pub fn cooling_sweep(ersfq_chip_w: f64, speedup: f64) -> Vec<CoolingPoint> {
    let _trace = sfq_obs::trace::span("sweep", "cooling sweep");
    let tpu = cryo::PowerEfficiency::new(1.0, 40.0);
    let stages = [4.2f64, 10.0, 20.0, 40.0, 77.0];
    par_map(&stages, |&t| {
        let model = cryo::CoolingModel::carnot(t, 17.6);
        let eff = cryo::PowerEfficiency::new(speedup, model.wall_power_w(ersfq_chip_w));
        CoolingPoint {
            temperature_k: t,
            overhead: model.overhead_factor,
            perf_per_watt_vs_tpu: eff.relative_to(&tpu),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_speedup_grows_with_link() {
        // The SFQ machine is the bandwidth-hungrier one: its advantage
        // widens as the link fattens.
        let pts = bandwidth_sweep();
        assert_eq!(pts.len(), 6);
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        assert!(
            last.speedup() > first.speedup(),
            "speedup {:.1} -> {:.1}",
            first.speedup(),
            last.speedup()
        );
        // SuperNPU throughput is monotone in bandwidth.
        for w in pts.windows(2) {
            assert!(w[1].supernpu_tmacs >= w[0].supernpu_tmacs * 0.999);
        }
    }

    #[test]
    fn process_scaling_saturates_on_the_memory_wall() {
        let pts = process_sweep();
        // Clock quintuples by 200 nm…
        let f0 = pts[0].frequency_ghz;
        let f200 = pts
            .iter()
            .find(|p| p.feature_um == 0.2)
            .unwrap()
            .frequency_ghz;
        assert!((f200 / f0 - 5.0).abs() < 0.01);
        // …but throughput grows sublinearly (memory-bound tail).
        let t0 = pts[0].supernpu_tmacs;
        let t200 = pts
            .iter()
            .find(|p| p.feature_um == 0.2)
            .unwrap()
            .supernpu_tmacs;
        assert!(t200 > t0, "faster clock must help some");
        assert!(
            t200 < 5.0 * t0,
            "memory wall must bite: {t0:.0} -> {t200:.0}"
        );
        // And 100 nm buys nothing beyond 200 nm (scaling floor).
        let t100 = pts
            .iter()
            .find(|p| p.feature_um == 0.1)
            .unwrap()
            .supernpu_tmacs;
        assert!((t100 - t200).abs() / t200 < 1e-9);
    }

    #[test]
    fn warmer_cold_stages_improve_efficiency() {
        let pts = cooling_sweep(2.3, 16.7);
        for w in pts.windows(2) {
            assert!(w[1].overhead < w[0].overhead);
            assert!(w[1].perf_per_watt_vs_tpu > w[0].perf_per_watt_vs_tpu);
        }
        // The 4.2 K row reproduces the ~400x overhead.
        assert!((pts[0].overhead - 400.0).abs() < 25.0);
    }
}
