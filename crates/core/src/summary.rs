//! Whole-paper summary: run every experiment and render one Markdown
//! report (the artifact a reviewer would skim first).

use std::fmt::Write as _;

use crate::ablations::all_ablations;
use crate::designs::DesignPoint;
use crate::evaluator::{
    average_speedup, fig15_cycle_breakdown, fig17_roofline, fig23_performance, table1_setup,
    table2_batches, table3_power,
};
use crate::explore::{fig20_buffer_sweep, fig21_resource_sweep, fig22_register_sweep};

fn md_table(out: &mut String, headers: &[&str], rows: &[Vec<String>]) {
    let _ = writeln!(out, "| {} |", headers.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for r in rows {
        let _ = writeln!(out, "| {} |", r.join(" | "));
    }
    let _ = writeln!(out);
}

/// Generate the full Markdown report. Runs every evaluation function
/// (tens of milliseconds in release builds).
pub fn full_report() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# SuperNPU reproduction — full report\n");

    // Headline.
    let fig23 = fig23_performance();
    let _ = writeln!(out, "## Headline (Fig. 23)\n");
    let mut rows: Vec<Vec<String>> = fig23
        .iter()
        .map(|r| {
            vec![
                r.network.clone(),
                format!("{:.1}", r.tpu_tmacs),
                format!("{:.2}x", r.speedup(DesignPoint::Baseline)),
                format!("{:.2}x", r.speedup(DesignPoint::BufferOpt)),
                format!("{:.2}x", r.speedup(DesignPoint::ResourceOpt)),
                format!("{:.2}x", r.speedup(DesignPoint::SuperNpu)),
            ]
        })
        .collect();
    let mut geo = vec!["**geomean**".to_owned(), "1.0".to_owned()];
    for d in DesignPoint::SFQ_DESIGNS {
        geo.push(format!("**{:.2}x**", average_speedup(&fig23, d)));
    }
    rows.push(geo);
    md_table(
        &mut out,
        &[
            "workload",
            "TPU TMAC/s",
            "Baseline",
            "Buffer opt.",
            "Resource opt.",
            "SuperNPU",
        ],
        &rows,
    );

    // Table I.
    let _ = writeln!(out, "## Setup (Table I)\n");
    let rows: Vec<Vec<String>> = table1_setup()
        .into_iter()
        .map(|r| {
            vec![
                r.design,
                format!("{}x{}", r.array.0, r.array.1),
                format!("{:.1}", r.frequency_ghz),
                format!("{:.0}", r.peak_tmacs),
                format!("{:.0}", r.area_mm2_28nm),
            ]
        })
        .collect();
    md_table(
        &mut out,
        &["design", "array", "GHz", "peak TMAC/s", "mm² @28nm"],
        &rows,
    );

    // Table II.
    let _ = writeln!(out, "## Batches (Table II)\n");
    let rows: Vec<Vec<String>> = table2_batches()
        .into_iter()
        .map(|r| {
            let mut row = vec![r.network];
            row.extend(r.batches.iter().map(ToString::to_string));
            row
        })
        .collect();
    md_table(
        &mut out,
        &[
            "workload",
            "TPU",
            "Baseline",
            "Buffer opt.",
            "Resource opt.",
            "SuperNPU",
        ],
        &rows,
    );

    // Table III.
    let _ = writeln!(out, "## Power efficiency (Table III)\n");
    let rows: Vec<Vec<String>> = table3_power()
        .into_iter()
        .map(|r| {
            vec![
                r.variant,
                format!("{:.2}", r.power_w),
                format!("{:.3}", r.perf_per_watt_vs_tpu),
            ]
        })
        .collect();
    md_table(&mut out, &["variant", "power W", "perf/W vs TPU"], &rows);

    // Bottlenecks.
    let _ = writeln!(out, "## Baseline bottlenecks (Figs. 15 & 17)\n");
    let rows: Vec<Vec<String>> = fig15_cycle_breakdown()
        .into_iter()
        .zip(fig17_roofline())
        .map(|(b, r)| {
            vec![
                b.network,
                format!("{:.1}%", 100.0 * b.preparation),
                format!("{:.1}", r.intensity_mac_per_byte),
                format!("{:.2}%", 100.0 * r.roofline_gmacs / r.peak_gmacs),
            ]
        })
        .collect();
    md_table(
        &mut out,
        &["workload", "prep cycles", "MAC/byte (b=1)", "roofline util"],
        &rows,
    );

    // Optimization sweeps.
    let _ = writeln!(out, "## Optimization sweeps (Figs. 20–22)\n");
    let rows: Vec<Vec<String>> = fig20_buffer_sweep()
        .into_iter()
        .map(|p| {
            vec![
                p.label,
                format!("{:.2}x", p.single_batch),
                format!("{:.2}x", p.max_batch),
                format!("{:.3}x", p.area),
            ]
        })
        .collect();
    md_table(
        &mut out,
        &["buffer config", "single batch", "max batch", "area"],
        &rows,
    );

    let rows: Vec<Vec<String>> = fig21_resource_sweep()
        .into_iter()
        .map(|p| {
            vec![
                format!("{} / {} MB", p.width, p.buffer_mb),
                format!("{:.1}x", p.max_batch_fixed_buffer),
                format!("{:.1}x", p.max_batch_added_buffer),
            ]
        })
        .collect();
    md_table(
        &mut out,
        &["width / buffer", "24 MB kept", "added buffer"],
        &rows,
    );

    let pts = fig22_register_sweep();
    let rows: Vec<Vec<String>> = [1u32, 2, 4, 8, 16, 32]
        .iter()
        .map(|&regs| {
            let perf = |w: u32| {
                pts.iter()
                    .find(|p| p.width == w && p.regs == regs)
                    .map_or(0.0, |p| p.performance)
            };
            vec![
                regs.to_string(),
                format!("{:.1}x", perf(64)),
                format!("{:.1}x", perf(128)),
            ]
        })
        .collect();
    md_table(&mut out, &["regs/PE", "width 64", "width 128"], &rows);

    // Ablations.
    let _ = writeln!(out, "## Design-choice ablations (§III)\n");
    let rows: Vec<Vec<String>> = all_ablations()
        .into_iter()
        .map(|r| {
            vec![
                r.choice.clone(),
                format!("{:.1}", r.adopted_tmacs),
                format!("{:.1}", r.alternative_tmacs),
                format!("{:.2}x", r.gain()),
            ]
        })
        .collect();
    md_table(
        &mut out,
        &["choice", "adopted", "alternative", "gain"],
        &rows,
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_every_section() {
        let r = full_report();
        for section in [
            "Headline (Fig. 23)",
            "Setup (Table I)",
            "Batches (Table II)",
            "Power efficiency (Table III)",
            "Baseline bottlenecks",
            "Optimization sweeps",
            "Design-choice ablations",
        ] {
            assert!(r.contains(section), "missing section {section}");
        }
        // Sanity: the geomean row exists and the report is substantial.
        assert!(r.contains("**geomean**"));
        assert!(r.len() > 2000, "report length {}", r.len());
    }
}
