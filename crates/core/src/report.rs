//! Plain-text table rendering for the experiment binaries.

/// Render a fixed-width table: a header row plus data rows. Columns
/// are sized to their widest cell; numeric-looking cells are right-
/// aligned.
///
/// # Panics
///
/// Panics if any row has a different arity than the header.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(
            r.len(),
            headers.len(),
            "row {i} has {} cells, header has {}",
            r.len(),
            headers.len()
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let numeric = |s: &str| {
        !s.is_empty()
            && s.chars()
                .all(|c| c.is_ascii_digit() || ".-+exX%".contains(c))
    };
    let mut out = String::new();
    let fmt_row = |cells: &[String], out: &mut String| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if numeric(cell) {
                out.push_str(&format!("{cell:>w$}", w = *w));
            } else {
                out.push_str(&format!("{cell:<w$}", w = *w));
            }
        }
        out.push('\n');
    };
    fmt_row(
        &headers.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>(),
        &mut out,
    );
    let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        fmt_row(row, &mut out);
    }
    out
}

/// Human-readable dump of the live [`sfq_obs`] registry, or `None`
/// when metrics are disabled. Append this to experiment reports so a
/// `SUPERNPU_METRICS=1` run shows where its time went next to its
/// results (same table [`sfq_obs::dump_on_exit`] prints).
pub fn metrics_table() -> Option<String> {
    sfq_obs::enabled().then(sfq_obs::render_table)
}

/// Format a float with `digits` decimals.
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Format a ratio as `N.NNx`.
pub fn ratio(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else {
        format!("{x:.2}x")
    }
}

/// Format a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["alpha".into(), "1.00".into()],
                vec!["b".into(), "200.50".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numeric column right-aligned: both rows end at same column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn arity_mismatch_panics() {
        let _ = render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(ratio(22.96), "22.96x");
        assert_eq!(ratio(490.0), "490x");
        assert_eq!(pct(0.914), "91.4%");
    }
}
