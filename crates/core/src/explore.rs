//! Design-space exploration sweeps (the paper's §V-B, Figs. 20–22).

use dnn_models::Network;
use serde::{Deserialize, Serialize};
use sfq_cells::CellLibrary;
use sfq_estimator::{estimate, NpuConfig};
use sfq_npu_sim::SimConfig;
use sfq_par::{par_map_catch, par_map_catch_keyed};

use crate::evaluator::{geomean, geomean_tmacs_over, paper_workloads};
use crate::resilient::{run_resilient, sweep_identity, ResilientOpts, SweepError, SweepReport};

const MB: u64 = 1024 * 1024;

/// Collect a crash-isolated sweep: a panicking point is dropped (and
/// counted under `explore.points_lost`) instead of taking the whole
/// sweep down. Deterministic: which points survive depends only on the
/// inputs, never on the schedule.
fn collect_sweep<P>(sweep: &'static str, results: Vec<Result<P, sfq_par::TaskPanic>>) -> Vec<P> {
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(p) => out.push(p),
            Err(e) => {
                sfq_obs::inc("explore.points_lost");
                sfq_obs::log(sfq_obs::Level::Warn, || {
                    format!("{sweep}: sweep point lost: {e}")
                });
            }
        }
    }
    out
}

/// Geomean effective TMAC/s of a config across the six workloads.
///
/// The workload list is passed in (loaded once per sweep) rather than
/// re-instantiated per sweep point; see
/// [`crate::evaluator::geomean_tmacs_over`].
fn geomean_tmacs(cfg: &SimConfig, nets: &[Network], single_batch: bool) -> f64 {
    geomean_tmacs_over(cfg, nets, single_batch)
}

// ---------------------------------------------------------------- Fig 20

/// One x-position of Fig. 20.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferSweepPoint {
    /// X-axis label (Baseline, +Integration, +Division N…).
    pub label: String,
    /// Division degree of the point.
    pub division: u32,
    /// Single-batch performance normalized to Baseline.
    pub single_batch: f64,
    /// Max-batch performance normalized to Baseline.
    pub max_batch: f64,
    /// Chip area normalized to Baseline.
    pub area: f64,
}

/// The division degrees swept by Fig. 20 (plus the implicit
/// division-1 Baseline bar).
const FIG20_DIVISIONS: [u32; 7] = [2, 4, 16, 64, 256, 1024, 4096];

/// Shared per-sweep context: immutable inputs plus the Baseline
/// normalizers, built once and reused by every point (and by both
/// the plain and the resilient sweep drivers).
struct Fig20Ctx {
    lib: CellLibrary,
    nets: Vec<Network>,
    base_single: f64,
    base_max: f64,
    base_area: f64,
}

impl Fig20Ctx {
    fn new() -> Self {
        let lib = CellLibrary::aist_10um();
        let nets = paper_workloads();
        let baseline_cfg = SimConfig::paper_baseline();
        let base_single = geomean_tmacs(&baseline_cfg, &nets, true);
        let base_max = geomean_tmacs(&baseline_cfg, &nets, false);
        let base_area = estimate(&baseline_cfg.npu, &lib).area_mm2_native;
        Fig20Ctx {
            lib,
            nets,
            base_single,
            base_max,
            base_area,
        }
    }

    fn baseline_point() -> BufferSweepPoint {
        BufferSweepPoint {
            label: "Baseline".into(),
            division: 1,
            single_batch: 1.0,
            max_batch: 1.0,
            area: 1.0,
        }
    }

    fn point(&self, division: u32) -> BufferSweepPoint {
        let _point = sfq_obs::span("explore.fig20.point_ms");
        let _ppoint = if sfq_obs::prof::detail_enabled() {
            sfq_obs::prof::frame(&format!("fig20 d={division}"))
        } else {
            sfq_obs::prof::frame("fig20.point")
        };
        let npu = NpuConfig {
            name: format!("+Division {division}"),
            division,
            ..NpuConfig::paper_buffer_opt()
        };
        let label = if division == 2 {
            "+Integration (Div. 2)".to_owned()
        } else {
            format!("+Division {division}")
        };
        let cfg = SimConfig::from_npu(npu, &self.lib);
        BufferSweepPoint {
            label,
            division,
            single_batch: geomean_tmacs(&cfg, &self.nets, true) / self.base_single,
            max_batch: geomean_tmacs(&cfg, &self.nets, false) / self.base_max,
            area: estimate(&cfg.npu, &self.lib).area_mm2_native / self.base_area,
        }
    }
}

/// The buffer-optimization sweep (Fig. 20): buffer integration, then
/// increasing division degrees, in performance (single and max batch)
/// and area, all normalized to Baseline.
pub fn fig20_buffer_sweep() -> Vec<BufferSweepPoint> {
    let _sweep = sfq_obs::span("explore.fig20.ms");
    let _prof = sfq_obs::prof::frame("explore.fig20");
    let _trace = sfq_obs::trace::span("sweep", "fig20 buffer sweep");
    sfq_obs::log(sfq_obs::Level::Info, || {
        "fig20: buffer-division sweep starting".into()
    });
    let ctx = Fig20Ctx::new();
    let swept = par_map_catch(&FIG20_DIVISIONS, |&division| ctx.point(division));
    let mut points = vec![Fig20Ctx::baseline_point()];
    points.extend(collect_sweep("fig20", swept));
    points
}

/// [`fig20_buffer_sweep`] under execution guards: deadline/cancel
/// budget, retry-with-backoff, per-point terminal labels and
/// checkpoint/resume, via [`crate::resilient::run_resilient`]. Point
/// 0 is the Baseline bar; points 1..=7 are the division degrees. The
/// fallback rung re-evaluates the point inline (the evaluation is
/// deterministic closed-form work, so an inline retry outside the
/// parallel dispatch is the reliable bottom of the ladder).
///
/// # Errors
///
/// Checkpoint-layer trouble only; see [`SweepError`].
pub fn fig20_buffer_sweep_resilient(
    opts: &ResilientOpts,
) -> Result<SweepReport<BufferSweepPoint>, SweepError> {
    let _sweep = sfq_obs::span("explore.fig20.ms");
    let _trace = sfq_obs::trace::span("sweep", "fig20 buffer sweep (resilient)");
    let ctx = Fig20Ctx::new();
    let eval = |i: usize| {
        if i == 0 {
            Fig20Ctx::baseline_point()
        } else {
            ctx.point(FIG20_DIVISIONS[i - 1])
        }
    };
    let mut ident: Vec<u64> = vec![FIG20_DIVISIONS.len() as u64 + 1];
    ident.extend(FIG20_DIVISIONS.iter().map(|&d| u64::from(d)));
    let eval = &eval;
    run_resilient(
        "fig20",
        sweep_identity(&ident),
        FIG20_DIVISIONS.len() + 1,
        opts,
        eval,
        Some(eval),
    )
}

// ---------------------------------------------------------------- Fig 21

/// One x-position of Fig. 21.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceSweepPoint {
    /// PE-array width.
    pub width: u32,
    /// Total on-chip buffer with the area reinvested, MB.
    pub buffer_mb: u32,
    /// Max-batch performance with the 24 MB buffers kept, normalized
    /// to Baseline.
    pub max_batch_fixed_buffer: f64,
    /// Max-batch performance with the freed area reinvested in
    /// buffers, normalized to Baseline.
    pub max_batch_added_buffer: f64,
    /// Geomean computational intensity (batch-weighted MAC/byte)
    /// normalized to Baseline, with the added buffer.
    pub intensity: f64,
}

/// The paper's width → total-buffer schedule (Fig. 21 x-axis).
const FIG21_SCHEDULE: [(u32, u32); 5] = [(256, 24), (128, 38), (64, 46), (32, 50), (16, 51)];

struct Fig21Ctx {
    lib: CellLibrary,
    nets: Vec<Network>,
    base_max: f64,
    base_intensity: f64,
}

impl Fig21Ctx {
    fn new() -> Self {
        let lib = CellLibrary::aist_10um();
        let nets = paper_workloads();
        let base_max = geomean_tmacs(&SimConfig::paper_baseline(), &nets, false);
        let base_intensity = geomean(
            &nets
                .iter()
                .map(|n| dnn_models::intensity::network_intensity(n, 1))
                .collect::<Vec<_>>(),
        );
        Fig21Ctx {
            lib,
            nets,
            base_max,
            base_intensity,
        }
    }

    fn point(&self, width: u32, buffer_mb: u32) -> ResourceSweepPoint {
        let _point = sfq_obs::span("explore.fig21.point_ms");
        let _ppoint = if sfq_obs::prof::detail_enabled() {
            sfq_obs::prof::frame(&format!("fig21 w={width} b={buffer_mb}MB"))
        } else {
            sfq_obs::prof::frame("fig21.point")
        };
        let make = |total_mb: u64| {
            let npu = NpuConfig {
                name: format!("width {width}"),
                array_width: width,
                ifmap_buf_bytes: total_mb * MB / 2,
                output_buf_bytes: total_mb * MB / 2,
                psum_buf_bytes: 0,
                integrated_output: true,
                // Keep chunk lengths constant as width shrinks
                // (the paper scales 64 → 256 divisions).
                division: 64 * (256 / width).max(1),
                ..NpuConfig::paper_baseline()
            };
            SimConfig::from_npu(npu, &self.lib)
        };
        let fixed = make(24);
        let added = make(u64::from(buffer_mb));

        let intensity = geomean(
            &self
                .nets
                .iter()
                .map(|n| {
                    let b = sfq_npu_sim::structural_max_batch(&added.npu, n);
                    dnn_models::intensity::network_intensity(n, b)
                })
                .collect::<Vec<_>>(),
        ) / self.base_intensity;

        ResourceSweepPoint {
            width,
            buffer_mb,
            max_batch_fixed_buffer: geomean_tmacs(&fixed, &self.nets, false) / self.base_max,
            max_batch_added_buffer: geomean_tmacs(&added, &self.nets, false) / self.base_max,
            intensity,
        }
    }
}

/// The resource-balancing sweep (Fig. 21): shrink the PE-array width,
/// reinvest the area into buffer capacity (the paper's capacity
/// schedule), and measure max-batch performance and intensity.
pub fn fig21_resource_sweep() -> Vec<ResourceSweepPoint> {
    let _sweep = sfq_obs::span("explore.fig21.ms");
    let _prof = sfq_obs::prof::frame("explore.fig21");
    let _trace = sfq_obs::trace::span("sweep", "fig21 resource sweep");
    sfq_obs::log(sfq_obs::Level::Info, || {
        "fig21: resource-balancing sweep starting".into()
    });
    let ctx = Fig21Ctx::new();
    let swept = par_map_catch(&FIG21_SCHEDULE, |&(width, buffer_mb)| {
        ctx.point(width, buffer_mb)
    });
    collect_sweep("fig21", swept)
}

/// [`fig21_resource_sweep`] under execution guards (see
/// [`fig20_buffer_sweep_resilient`] for the ladder).
///
/// # Errors
///
/// Checkpoint-layer trouble only; see [`SweepError`].
pub fn fig21_resource_sweep_resilient(
    opts: &ResilientOpts,
) -> Result<SweepReport<ResourceSweepPoint>, SweepError> {
    let _sweep = sfq_obs::span("explore.fig21.ms");
    let _trace = sfq_obs::trace::span("sweep", "fig21 resource sweep (resilient)");
    let ctx = Fig21Ctx::new();
    let eval = |i: usize| {
        let (width, buffer_mb) = FIG21_SCHEDULE[i];
        ctx.point(width, buffer_mb)
    };
    let ident: Vec<u64> = FIG21_SCHEDULE
        .iter()
        .map(|&(w, b)| (u64::from(w) << 32) | u64::from(b))
        .collect();
    let eval = &eval;
    run_resilient(
        "fig21",
        sweep_identity(&ident),
        FIG21_SCHEDULE.len(),
        opts,
        eval,
        Some(eval),
    )
}

// ---------------------------------------------------------------- Fig 22

/// One bar of Fig. 22.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegisterSweepPoint {
    /// PE-array width (the paper compares 64 and 128).
    pub width: u32,
    /// Weight registers per PE.
    pub regs: u32,
    /// Max-batch performance normalized to Baseline.
    pub performance: f64,
}

fn fig22_grid() -> Vec<(u32, u64, u32)> {
    let mut grid = Vec::new();
    for (width, buffer_mb) in [(64u32, 46u64), (128, 38)] {
        for regs in [1u32, 2, 4, 8, 16, 32] {
            grid.push((width, buffer_mb, regs));
        }
    }
    grid
}

struct Fig22Ctx {
    lib: CellLibrary,
    nets: Vec<Network>,
    base_max: f64,
}

impl Fig22Ctx {
    fn new() -> Self {
        let lib = CellLibrary::aist_10um();
        let nets = paper_workloads();
        let base_max = geomean_tmacs(&SimConfig::paper_baseline(), &nets, false);
        Fig22Ctx {
            lib,
            nets,
            base_max,
        }
    }

    fn point(&self, width: u32, buffer_mb: u64, regs: u32) -> RegisterSweepPoint {
        let _point = sfq_obs::span("explore.fig22.point_ms");
        let _ppoint = if sfq_obs::prof::detail_enabled() {
            sfq_obs::prof::frame(&format!("fig22 w={width} r={regs}"))
        } else {
            sfq_obs::prof::frame("fig22.point")
        };
        let npu = NpuConfig {
            name: format!("w{width} r{regs}"),
            array_width: width,
            regs_per_pe: regs,
            ifmap_buf_bytes: buffer_mb * MB / 2,
            output_buf_bytes: buffer_mb * MB / 2,
            psum_buf_bytes: 0,
            integrated_output: true,
            division: 64 * (256 / width).max(1),
            weight_buf_bytes: 16 * 1024 * u64::from(regs),
            ..NpuConfig::paper_baseline()
        };
        let cfg = SimConfig::from_npu(npu, &self.lib);
        RegisterSweepPoint {
            width,
            regs,
            performance: geomean_tmacs(&cfg, &self.nets, false) / self.base_max,
        }
    }
}

/// The per-PE register sweep (Fig. 22) at widths 64 and 128 with the
/// Fig. 21 "added buffer" capacities.
pub fn fig22_register_sweep() -> Vec<RegisterSweepPoint> {
    let _sweep = sfq_obs::span("explore.fig22.ms");
    let _prof = sfq_obs::prof::frame("explore.fig22");
    let _trace = sfq_obs::trace::span("sweep", "fig22 register sweep");
    sfq_obs::log(sfq_obs::Level::Info, || {
        "fig22: per-PE register sweep starting".into()
    });
    let ctx = Fig22Ctx::new();
    let grid = fig22_grid();
    // Keyed by array width: every point of one width shares the same
    // characterization and estimate-cache working set, so steering a
    // width's points to one worker keeps those cache lines (and the
    // memo scans) warm instead of bouncing them between threads.
    let swept = par_map_catch_keyed(
        &grid,
        |&(width, _, _)| u64::from(width),
        |&(width, buffer_mb, regs)| ctx.point(width, buffer_mb, regs),
    );
    collect_sweep("fig22", swept)
}

/// [`fig22_register_sweep`] under execution guards (see
/// [`fig20_buffer_sweep_resilient`] for the ladder).
///
/// # Errors
///
/// Checkpoint-layer trouble only; see [`SweepError`].
pub fn fig22_register_sweep_resilient(
    opts: &ResilientOpts,
) -> Result<SweepReport<RegisterSweepPoint>, SweepError> {
    let _sweep = sfq_obs::span("explore.fig22.ms");
    let _trace = sfq_obs::trace::span("sweep", "fig22 register sweep (resilient)");
    let ctx = Fig22Ctx::new();
    let grid = fig22_grid();
    let eval = |i: usize| {
        let (width, buffer_mb, regs) = grid[i];
        ctx.point(width, buffer_mb, regs)
    };
    let ident: Vec<u64> = grid
        .iter()
        .map(|&(w, b, r)| (u64::from(w) << 40) | (b << 8) | u64::from(r))
        .collect();
    let eval = &eval;
    run_resilient(
        "fig22",
        sweep_identity(&ident),
        grid.len(),
        opts,
        eval,
        Some(eval),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig20_division_improves_then_area_explodes() {
        let pts = fig20_buffer_sweep();
        assert_eq!(pts.len(), 8);
        // Single-batch performance grows with division and saturates.
        let d64 = pts.iter().find(|p| p.division == 64).unwrap();
        assert!(
            d64.single_batch > 3.0,
            "d=64 single {:.2}",
            d64.single_batch
        );
        assert!(d64.max_batch > 10.0, "d=64 max {:.2}", d64.max_batch);
        // Area at 4096 clearly above baseline; at 64 modest.
        let d4096 = pts.iter().find(|p| p.division == 4096).unwrap();
        assert!(d4096.area > d64.area);
        assert!(d64.area < 1.25, "d=64 area {:.2}", d64.area);
    }

    #[test]
    fn fig20_monotone_single_batch_until_saturation() {
        let pts = fig20_buffer_sweep();
        for pair in pts.windows(2) {
            assert!(
                pair[1].single_batch >= pair[0].single_batch * 0.98,
                "{} -> {}: {:.2} -> {:.2}",
                pair[0].label,
                pair[1].label,
                pair[0].single_batch,
                pair[1].single_batch
            );
        }
    }

    #[test]
    fn fig21_narrower_width_raises_intensity() {
        let pts = fig21_resource_sweep();
        assert_eq!(pts.len(), 5);
        // Intensity grows monotonically as the array narrows.
        for pair in pts.windows(2) {
            assert!(
                pair[1].intensity >= pair[0].intensity * 0.95,
                "width {} -> {}",
                pair[0].width,
                pair[1].width
            );
        }
        // Added buffer always at least matches the fixed buffer.
        for p in &pts {
            assert!(
                p.max_batch_added_buffer >= p.max_batch_fixed_buffer * 0.95,
                "width {}",
                p.width
            );
        }
    }

    #[test]
    fn fig21_best_width_is_64_or_128() {
        // The paper picks 64 (128 peaks slightly higher but has no
        // register headroom).
        let pts = fig21_resource_sweep();
        let best = pts
            .iter()
            .max_by(|a, b| {
                a.max_batch_added_buffer
                    .partial_cmp(&b.max_batch_added_buffer)
                    .unwrap()
            })
            .unwrap();
        assert!(
            best.width == 64 || best.width == 128,
            "best width {}",
            best.width
        );
    }

    #[test]
    fn fig22_width64_benefits_from_registers() {
        let pts = fig22_register_sweep();
        assert_eq!(pts.len(), 12);
        let perf = |w: u32, r: u32| {
            pts.iter()
                .find(|p| p.width == w && p.regs == r)
                .unwrap()
                .performance
        };
        // Width 64 gains from 1 → 8 registers (paper Fig. 22).
        assert!(
            perf(64, 8) > perf(64, 1),
            "{} vs {}",
            perf(64, 8),
            perf(64, 1)
        );
        // Width 128 gains less (its intensity is memory-bound).
        let gain64 = perf(64, 8) / perf(64, 1);
        let gain128 = perf(128, 8) / perf(128, 1);
        assert!(
            gain64 >= gain128 * 0.98,
            "64: {gain64:.2} 128: {gain128:.2}"
        );
    }
}
