//! The paper's named design points (Table I).

use serde::{Deserialize, Serialize};
use sfq_estimator::NpuConfig;
use sfq_npu_sim::SimConfig;

/// The five accelerators compared throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignPoint {
    /// Conventional CMOS TPU core (the normalization reference).
    Tpu,
    /// Naïve SFQ NPU with TPU-like organization.
    Baseline,
    /// Baseline + integrated/divided on-chip buffers.
    BufferOpt,
    /// Buffer opt. + narrowed array and enlarged buffers.
    ResourceOpt,
    /// Resource opt. + 8 weight registers per PE — the full design.
    SuperNpu,
}

impl DesignPoint {
    /// The four SFQ design points in optimization order.
    pub const SFQ_DESIGNS: [DesignPoint; 4] = [
        DesignPoint::Baseline,
        DesignPoint::BufferOpt,
        DesignPoint::ResourceOpt,
        DesignPoint::SuperNpu,
    ];

    /// All five design points, in the paper's presentation order.
    pub const ALL: [DesignPoint; 5] = [
        DesignPoint::Tpu,
        DesignPoint::Baseline,
        DesignPoint::BufferOpt,
        DesignPoint::ResourceOpt,
        DesignPoint::SuperNpu,
    ];

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            DesignPoint::Tpu => "TPU",
            DesignPoint::Baseline => "Baseline",
            DesignPoint::BufferOpt => "Buffer opt.",
            DesignPoint::ResourceOpt => "Resource opt.",
            DesignPoint::SuperNpu => "SuperNPU",
        }
    }

    /// Architectural configuration for the SFQ designs.
    ///
    /// # Panics
    ///
    /// Panics for [`DesignPoint::Tpu`], which is a CMOS machine — use
    /// [`scale_sim::CmosNpuConfig::tpu_core`] instead.
    pub fn npu_config(self) -> NpuConfig {
        match self {
            DesignPoint::Tpu => panic!("the TPU is modeled by scale-sim, not the SFQ estimator"),
            DesignPoint::Baseline => NpuConfig::paper_baseline(),
            DesignPoint::BufferOpt => NpuConfig::paper_buffer_opt(),
            DesignPoint::ResourceOpt => NpuConfig::paper_resource_opt(),
            DesignPoint::SuperNpu => NpuConfig::paper_supernpu(),
        }
    }

    /// Full simulation configuration (RSFQ library, 300 GB/s HBM).
    ///
    /// # Panics
    ///
    /// Panics for [`DesignPoint::Tpu`] (see [`DesignPoint::npu_config`]).
    pub fn sim_config(self) -> SimConfig {
        match self {
            DesignPoint::Tpu => panic!("the TPU is modeled by scale-sim, not the SFQ simulator"),
            DesignPoint::Baseline => SimConfig::paper_baseline(),
            DesignPoint::BufferOpt => SimConfig::paper_buffer_opt(),
            DesignPoint::ResourceOpt => SimConfig::paper_resource_opt(),
            DesignPoint::SuperNpu => SimConfig::paper_supernpu(),
        }
    }
}

impl std::fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_designs_with_stable_labels() {
        let labels: Vec<&str> = DesignPoint::ALL.iter().map(|d| d.label()).collect();
        assert_eq!(
            labels,
            [
                "TPU",
                "Baseline",
                "Buffer opt.",
                "Resource opt.",
                "SuperNPU"
            ]
        );
    }

    #[test]
    fn sfq_designs_build_configs() {
        for d in DesignPoint::SFQ_DESIGNS {
            let cfg = d.npu_config();
            assert_eq!(cfg.name, d.label());
        }
    }

    #[test]
    #[should_panic(expected = "scale-sim")]
    fn tpu_has_no_sfq_config() {
        let _ = DesignPoint::Tpu.npu_config();
    }
}
