//! Crash-safe, budget-aware sweep execution — the guard layer's sweep
//! runner (the tentpole of the robustness PR).
//!
//! Every design-space sweep in this crate has the same shape: `n`
//! independent design points, each evaluated by a pure function of its
//! index. [`run_resilient`] runs that shape under execution guards:
//!
//! * the whole sweep shares one [`sfq_guard::RunBudget`]
//!   (deadline + cancel token), installed as the ambient guard around
//!   every point so transient solves inside observe it too;
//! * a point that panics or times out is retried serially under
//!   exponential backoff, then degraded to the caller's `fallback`
//!   (typically the same closed-form evaluation, or reference numbers
//!   in the style of `sfq_chars::reference_measurements`) instead of
//!   being dropped;
//! * **every** point ends in a labeled terminal [`PointState`] —
//!   nothing is ever silently lost;
//! * with a checkpoint path, the completed prefix is persisted
//!   atomically (temp file + fsync + rename, via
//!   [`sfq_guard::checkpoint`]) after every chunk, so a killed sweep
//!   resumes bit-identically: restored values round-trip through the
//!   same JSON encoding the final report uses.
//!
//! This generalizes the checkpoint/resume harness that
//! `sfq-faults::mc` grew for Monte-Carlo yield runs to *any* sweep.
//!
//! With default options (unlimited budget, no checkpoint) the runner
//! degenerates to a single [`sfq_par::par_map_deadline`] dispatch —
//! the same scheduling as the plain sweeps' `par_map_catch`, so the
//! guard layer costs nothing when it is not asked for.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use sfq_guard::checkpoint::{self, CheckpointError};
use sfq_guard::{chaos, RunBudget};
use sfq_par::{par_map_deadline, TaskOutcome};

/// Terminal state of one design point after a resilient sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PointState {
    /// Evaluated normally (first attempt or a successful retry).
    Completed,
    /// Every attempt failed; the fallback evaluation supplied the
    /// value. `attempts` counts the retries that were burned first.
    Degraded {
        /// Retries attempted before degrading.
        attempts: u32,
    },
    /// The sweep budget's deadline passed before the point could run
    /// (and no fallback was available to degrade to).
    TimedOut,
    /// The sweep was cooperatively cancelled before the point ran.
    Cancelled,
    /// The point panicked on every attempt and the fallback (if any)
    /// panicked too.
    Failed {
        /// Panic message of the last attempt.
        message: String,
    },
}

impl PointState {
    /// Static label for counters and reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PointState::Completed => "completed",
            PointState::Degraded { .. } => "degraded",
            PointState::TimedOut => "timed_out",
            PointState::Cancelled => "cancelled",
            PointState::Failed { .. } => "failed",
        }
    }
}

/// One design point's terminal state plus its value (present exactly
/// when the state is `Completed` or `Degraded`).
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedPoint<P> {
    /// Index of the point in the sweep's 0..n ordering.
    pub index: usize,
    /// How the point terminated.
    pub state: PointState,
    /// The evaluated (or fallback) value.
    pub value: Option<P>,
}

/// Result of a resilient sweep: every point, labeled.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport<P> {
    /// All `n` points, in index order.
    pub points: Vec<ResolvedPoint<P>>,
    /// How many leading points were restored from a checkpoint
    /// instead of evaluated.
    pub restored: usize,
}

impl<P> SweepReport<P> {
    /// Values of all value-bearing points, in index order.
    pub fn values(self) -> Vec<P> {
        self.points.into_iter().filter_map(|p| p.value).collect()
    }

    /// Points that ended without a value for a non-budget reason —
    /// the "silently lost" class the guard layer exists to empty.
    /// Budget stops (`TimedOut`/`Cancelled`) are excluded: they are
    /// the caller's explicit request to stop, not a loss.
    #[must_use]
    pub fn lost(&self) -> usize {
        self.points
            .iter()
            .filter(|p| p.value.is_none() && matches!(p.state, PointState::Failed { .. }))
            .count()
    }

    /// `(completed, degraded, timed_out, cancelled, failed)` counts.
    #[must_use]
    pub fn state_counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0);
        for p in &self.points {
            match p.state {
                PointState::Completed => c.0 += 1,
                PointState::Degraded { .. } => c.1 += 1,
                PointState::TimedOut => c.2 += 1,
                PointState::Cancelled => c.3 += 1,
                PointState::Failed { .. } => c.4 += 1,
            }
        }
        c
    }
}

/// Options for [`run_resilient`].
#[derive(Debug, Clone)]
pub struct ResilientOpts {
    /// Whole-sweep budget (deadline, cancel token). Installed as the
    /// ambient guard around every point evaluation.
    pub budget: RunBudget,
    /// Serial retries (with exponential backoff) for a point that
    /// panicked or was chaos-timed-out before degrading to the
    /// fallback.
    pub retries: u32,
    /// Where to persist the completed prefix (`None` disables
    /// checkpointing).
    pub checkpoint_path: Option<PathBuf>,
    /// Points per chunk between checkpoint writes (0 with a path set
    /// means one final write after the whole sweep).
    pub checkpoint_every: usize,
    /// Load a matching checkpoint and continue from its completed
    /// prefix.
    pub resume: bool,
}

impl ResilientOpts {
    /// No guards at all: unlimited budget, default retries, no
    /// checkpoint — the ≤2%-overhead configuration.
    #[must_use]
    pub fn unguarded() -> Self {
        ResilientOpts {
            budget: RunBudget::unlimited(),
            retries: sfq_guard::DEFAULT_RETRIES,
            checkpoint_path: None,
            checkpoint_every: 0,
            resume: false,
        }
    }

    /// Guards from the environment: `SUPERNPU_DEADLINE_MS` becomes
    /// the sweep deadline, `SUPERNPU_RETRIES` the retry count.
    #[must_use]
    pub fn from_env() -> Self {
        ResilientOpts {
            budget: RunBudget::from_env(),
            retries: sfq_guard::retries_env(),
            ..ResilientOpts::unguarded()
        }
    }

    /// Builder: set the sweep budget.
    #[must_use]
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Builder: checkpoint to `path` every `every` points and resume
    /// from it when present.
    #[must_use]
    pub fn with_checkpoint(mut self, path: PathBuf, every: usize, resume: bool) -> Self {
        self.checkpoint_path = Some(path);
        self.checkpoint_every = every;
        self.resume = resume;
        self
    }
}

/// Errors of the resilient runner itself (never of a design point —
/// point failures are [`PointState`]s, not errors).
#[derive(Debug)]
pub enum SweepError {
    /// Reading or writing the checkpoint failed.
    Checkpoint(CheckpointError),
    /// A checkpoint was found but belongs to a different sweep
    /// (name, identity or point count mismatch).
    Mismatch {
        /// Path of the offending checkpoint.
        path: PathBuf,
    },
    /// A point value could not be serialized for the checkpoint.
    Serialize {
        /// Index of the unserializable point.
        index: usize,
        /// Serializer error text.
        message: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Checkpoint(e) => write!(f, "sweep checkpoint: {e}"),
            SweepError::Mismatch { path } => write!(
                f,
                "checkpoint {} belongs to a different sweep (name/identity/total mismatch)",
                path.display()
            ),
            SweepError::Serialize { index, message } => {
                write!(
                    f,
                    "point {index} not serializable for checkpoint: {message}"
                )
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// Stable identity of a sweep's parameterization: mix the sweep's
/// defining integers (grid bounds, divisions, bit-cast floats…) so a
/// checkpoint from a differently-parameterized run is rejected
/// instead of silently grafted on.
#[must_use]
pub fn sweep_identity(parts: &[u64]) -> u64 {
    // splitmix64 finalizer over a running combine — stable across
    // runs and platforms, which is all an identity check needs.
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &p in parts {
        let mut z = h ^ p.wrapping_mul(0xff51_afd7_ed55_8ccd);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h = z ^ (z >> 31);
    }
    h
}

// Non-generic on-disk records (the vendored serde derive does not do
// generics): point values are stored pre-serialized.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PointRecord {
    index: u64,
    state: PointState,
    value_json: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SweepCheckpoint {
    name: String,
    identity: u64,
    total: u64,
    points: Vec<PointRecord>,
}

fn load_prefix<P: Deserialize>(
    path: &Path,
    name: &str,
    identity: u64,
    n: usize,
) -> Result<Vec<ResolvedPoint<P>>, SweepError> {
    let Some(cp) =
        checkpoint::load_json::<SweepCheckpoint>(path).map_err(SweepError::Checkpoint)?
    else {
        return Ok(Vec::new());
    };
    if cp.name != name || cp.identity != identity || cp.total != n as u64 {
        return Err(SweepError::Mismatch {
            path: path.to_path_buf(),
        });
    }
    let mut restored = Vec::new();
    for rec in &cp.points {
        // Only the in-order prefix of value-bearing points is
        // trustworthy: the first gap or non-terminal point marks
        // where the killed run stopped making durable progress.
        if rec.index != restored.len() as u64
            || !matches!(
                rec.state,
                PointState::Completed | PointState::Degraded { .. }
            )
        {
            break;
        }
        match serde_json::from_str::<P>(&rec.value_json) {
            Ok(v) => restored.push(ResolvedPoint {
                index: restored.len(),
                state: rec.state.clone(),
                value: Some(v),
            }),
            Err(_) => break,
        }
    }
    sfq_obs::add("resilient.points_restored", restored.len() as u64);
    Ok(restored)
}

fn write_prefix<P: Serialize>(
    path: &Path,
    name: &str,
    identity: u64,
    n: usize,
    resolved: &[ResolvedPoint<P>],
) -> Result<(), SweepError> {
    let mut points = Vec::with_capacity(resolved.len());
    for rp in resolved {
        let value_json = match &rp.value {
            Some(v) => serde_json::to_string(v).map_err(|e| SweepError::Serialize {
                index: rp.index,
                message: e.to_string(),
            })?,
            None => String::new(),
        };
        points.push(PointRecord {
            index: rp.index as u64,
            state: rp.state.clone(),
            value_json,
        });
    }
    let cp = SweepCheckpoint {
        name: name.to_owned(),
        identity,
        total: n as u64,
        points,
    };
    checkpoint::atomic_write_json(path, &cp).map_err(SweepError::Checkpoint)
}

fn retry_point<P>(
    i: usize,
    first: TaskOutcome<P>,
    opts: &ResilientOpts,
    eval: &(impl Fn(usize) -> P + Sync),
    fallback: Option<&(impl Fn(usize) -> P + Sync)>,
) -> ResolvedPoint<P> {
    let mut attempts = 0u32;
    for attempt in 1..=opts.retries {
        if opts.budget.is_cancelled() {
            return ResolvedPoint {
                index: i,
                state: PointState::Cancelled,
                value: None,
            };
        }
        // A globally expired deadline makes retries pointless: go
        // straight down the ladder to the fallback.
        if opts.budget.deadline_passed() {
            break;
        }
        attempts = attempt;
        sfq_guard::sleep_backoff(attempt);
        let chaos_action = chaos::decide(i as u64, attempt);
        if chaos_action == Some(chaos::ChaosAction::Timeout) {
            continue;
        }
        let caught = catch_unwind(AssertUnwindSafe(|| {
            sfq_guard::scope(&opts.budget, || {
                match chaos_action {
                    Some(chaos::ChaosAction::Panic) => chaos::injected_panic(i as u64),
                    Some(chaos::ChaosAction::Stall(d)) => std::thread::sleep(d),
                    _ => {}
                }
                eval(i)
            })
        }));
        if let Ok(v) = caught {
            return ResolvedPoint {
                index: i,
                state: PointState::Completed,
                value: Some(v),
            };
        }
    }
    // Bottom rung: the fallback runs inline, chaos-free and outside
    // the budget scope — it is the guarantee that a point ends with a
    // value, so nothing is allowed to interrupt it but its own panic.
    if let Some(fb) = fallback {
        if let Ok(v) = catch_unwind(AssertUnwindSafe(|| fb(i))) {
            sfq_obs::inc("guard.degraded");
            return ResolvedPoint {
                index: i,
                state: PointState::Degraded { attempts },
                value: Some(v),
            };
        }
    }
    let state = match first {
        TaskOutcome::Panicked(p) => PointState::Failed { message: p.message },
        TaskOutcome::Cancelled => PointState::Cancelled,
        _ => PointState::TimedOut,
    };
    ResolvedPoint {
        index: i,
        state,
        value: None,
    }
}

/// Run `n` design points under execution guards; see the module docs
/// for the guarantees.
///
/// `eval(i)` evaluates point `i`; it must be deterministic for
/// resume-bit-identity to hold. `fallback(i)`, when given, is the
/// degraded evaluation used after all retries fail — it runs inline
/// without chaos injection, so with a fallback present no point can
/// end valueless short of the fallback itself panicking.
///
/// `identity` fingerprints the sweep's parameterization (use
/// [`sweep_identity`]); a checkpoint whose identity differs is
/// rejected with [`SweepError::Mismatch`] rather than silently mixed
/// into the wrong sweep.
///
/// # Errors
///
/// Only checkpoint-layer problems ([`SweepError`]); design-point
/// failures are labeled [`PointState`]s in the report, never errors.
pub fn run_resilient<P, F, G>(
    name: &str,
    identity: u64,
    n: usize,
    opts: &ResilientOpts,
    eval: F,
    fallback: Option<G>,
) -> Result<SweepReport<P>, SweepError>
where
    P: Serialize + Deserialize + Send,
    F: Fn(usize) -> P + Sync,
    G: Fn(usize) -> P + Sync,
{
    let _trace = sfq_obs::trace::span("sweep", "resilient sweep");
    let indices: Vec<usize> = (0..n).collect();

    let mut resolved: Vec<ResolvedPoint<P>> = match (&opts.checkpoint_path, opts.resume) {
        (Some(p), true) => load_prefix(p, name, identity, n)?,
        _ => Vec::new(),
    };
    resolved.truncate(n);
    let restored = resolved.len();

    // Progress: the sweep narrates itself under its own name; the
    // par_map regions underneath see the slot taken and stay quiet.
    // Restored points count as done immediately.
    let progress = sfq_obs::progress::Region::enter(name, n as u64);
    if progress.is_claimed() {
        sfq_obs::progress::tick(restored as u64);
    }

    // Chunk size: the checkpoint cadence, or everything at once (a
    // single dispatch with the same scheduling as `par_map_catch`)
    // when checkpointing is off.
    let chunk = if opts.checkpoint_path.is_some() && opts.checkpoint_every > 0 {
        opts.checkpoint_every
    } else {
        n.saturating_sub(restored).max(1)
    };

    while resolved.len() < n {
        let start = resolved.len();
        let end = (start + chunk).min(n);
        let outcomes = par_map_deadline(&indices[start..end], &opts.budget, |&i| eval(i));
        for (off, outcome) in outcomes.into_iter().enumerate() {
            let i = start + off;
            let rp = match outcome {
                TaskOutcome::Completed(v) => ResolvedPoint {
                    index: i,
                    state: PointState::Completed,
                    value: Some(v),
                },
                TaskOutcome::Cancelled => ResolvedPoint {
                    index: i,
                    state: PointState::Cancelled,
                    value: None,
                },
                other => retry_point(i, other, opts, &eval, fallback.as_ref()),
            };
            if sfq_obs::enabled() {
                sfq_obs::inc(match rp.state {
                    PointState::Completed => "resilient.completed",
                    PointState::Degraded { .. } => "resilient.degraded",
                    PointState::TimedOut => "resilient.timed_out",
                    PointState::Cancelled => "resilient.cancelled",
                    PointState::Failed { .. } => "resilient.failed",
                });
            }
            // A point the budget clipped marks the whole run's ledger
            // outcome — the manifest should say the sweep was cut
            // short even though the report itself is well-formed.
            if matches!(rp.state, PointState::TimedOut | PointState::Cancelled) {
                sfq_obs::ledger::note_budget_exceeded();
            }
            if progress.is_claimed() {
                sfq_obs::progress::tick(1);
            }
            resolved.push(rp);
        }
        if let Some(p) = &opts.checkpoint_path {
            write_prefix(p, name, identity, n, &resolved)?;
        }
    }

    Ok(SweepReport {
        points: resolved,
        restored,
    })
}
