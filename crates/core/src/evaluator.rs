//! One function per paper table/figure (see DESIGN.md's experiment
//! index). Each returns typed rows; the `supernpu-bench` binaries
//! print them in the paper's layout.

use dnn_models::{intensity, zoo, Network};
use scale_sim::{simulate_network as simulate_tpu, CmosNpuConfig};
use serde::{Deserialize, Serialize};
use sfq_cells::{BiasScheme, CellLibrary};
use sfq_estimator::estimate;
use sfq_npu_sim::{simulate_network, simulate_network_with_batch, structural_max_batch, SimConfig};
use sfq_par::par_map;

use crate::designs::DesignPoint;

/// The six evaluation workloads.
pub fn paper_workloads() -> Vec<Network> {
    zoo::all()
}

/// Geomean effective TMAC/s of `cfg` across `nets`.
///
/// Takes the workload list as a parameter so sweeps load the zoo once
/// and reuse it across every sweep point; the per-workload simulations
/// fan out across threads (deterministically — results are reduced in
/// workload order).
pub fn geomean_tmacs_over(cfg: &SimConfig, nets: &[Network], single_batch: bool) -> f64 {
    let v = par_map(nets, |n| {
        let s = if single_batch {
            simulate_network_with_batch(cfg, n, 1)
        } else {
            simulate_network(cfg, n)
        };
        s.effective_tmacs()
    });
    geomean(&v)
}

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics on an empty slice or non-positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|v| {
            assert!(*v > 0.0, "geomean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

// ---------------------------------------------------------------- Fig 15

/// One bar of Fig. 15: Baseline's normalized cycle breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig15Row {
    /// Workload.
    pub network: String,
    /// Fraction of cycles spent preparing (buffer shifting, psum
    /// moves, weight loads, memory stalls).
    pub preparation: f64,
    /// Fraction spent computing.
    pub computation: f64,
}

/// Baseline's preparation-vs-computation cycle breakdown (Fig. 15).
pub fn fig15_cycle_breakdown() -> Vec<Fig15Row> {
    let cfg = DesignPoint::Baseline.sim_config();
    par_map(&paper_workloads(), |net| {
        let s = simulate_network(&cfg, net);
        let prep = s.prep_fraction();
        Fig15Row {
            network: net.name().to_owned(),
            preparation: prep,
            computation: 1.0 - prep,
        }
    })
}

// ---------------------------------------------------------------- Fig 17

/// One point of the Fig. 17 roofline plot (Baseline, single batch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig17Row {
    /// Workload.
    pub network: String,
    /// Computational intensity, MAC/byte (single batch).
    pub intensity_mac_per_byte: f64,
    /// Roofline-attainable throughput, GMAC/s.
    pub roofline_gmacs: f64,
    /// Simulated effective throughput, GMAC/s.
    pub effective_gmacs: f64,
    /// Machine peak, GMAC/s.
    pub peak_gmacs: f64,
}

/// The Baseline roofline analysis (Fig. 17): single-batch intensity vs
/// attainable and achieved GMAC/s.
pub fn fig17_roofline() -> Vec<Fig17Row> {
    let cfg = DesignPoint::Baseline.sim_config();
    let peak = estimate(&cfg.npu, &CellLibrary::aist_10um()).peak_tmacs * 1e12;
    let bw = cfg.mem_bandwidth_gbs * 1e9;
    par_map(&paper_workloads(), |net| {
        let i = intensity::network_intensity(net, 1);
        let s = simulate_network_with_batch(&cfg, net, 1);
        Fig17Row {
            network: net.name().to_owned(),
            intensity_mac_per_byte: i,
            roofline_gmacs: intensity::roofline_macs_per_s(peak, bw, i) / 1e9,
            effective_gmacs: s.effective_tmacs() * 1e3,
            peak_gmacs: peak / 1e9,
        }
    })
}

// ---------------------------------------------------------------- Fig 23

/// One workload row of Fig. 23.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig23Row {
    /// Workload.
    pub network: String,
    /// TPU effective throughput, TMAC/s (the normalization base).
    pub tpu_tmacs: f64,
    /// Effective TMAC/s for (Baseline, Buffer opt., Resource opt.,
    /// SuperNPU), in that order.
    pub sfq_tmacs: [f64; 4],
}

impl Fig23Row {
    /// Speed-up of `design` over the TPU on this workload.
    ///
    /// # Panics
    ///
    /// Panics for [`DesignPoint::Tpu`] (its speed-up is 1 by
    /// definition).
    pub fn speedup(&self, design: DesignPoint) -> f64 {
        let Some(idx) = DesignPoint::SFQ_DESIGNS.iter().position(|d| *d == design) else {
            panic!("TPU speedup is 1 by definition");
        };
        self.sfq_tmacs[idx] / self.tpu_tmacs
    }
}

/// The headline performance evaluation (Fig. 23): every SFQ design
/// against the TPU core on all six workloads, at Table II batches.
pub fn fig23_performance() -> Vec<Fig23Row> {
    let tpu = CmosNpuConfig::tpu_core();
    let sfq_cfgs: Vec<_> = DesignPoint::SFQ_DESIGNS
        .iter()
        .map(|d| d.sim_config())
        .collect();
    par_map(&paper_workloads(), |net| {
        let tpu_tmacs = simulate_tpu(&tpu, net).effective_tmacs();
        let mut sfq = [0.0f64; 4];
        for (slot, cfg) in sfq_cfgs.iter().enumerate() {
            sfq[slot] = simulate_network(cfg, net).effective_tmacs();
        }
        Fig23Row {
            network: net.name().to_owned(),
            tpu_tmacs,
            sfq_tmacs: sfq,
        }
    })
}

/// Geomean speed-up of one design over the TPU across all workloads.
pub fn average_speedup(rows: &[Fig23Row], design: DesignPoint) -> f64 {
    let v: Vec<f64> = rows.iter().map(|r| r.speedup(design)).collect();
    geomean(&v)
}

// ---------------------------------------------------------------- Table I

/// One column of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Design name.
    pub design: String,
    /// PE-array width × height.
    pub array: (u32, u32),
    /// Ifmap buffer, MB.
    pub ifmap_mb: f64,
    /// Output (ofmap or integrated) buffer, MB.
    pub output_mb: f64,
    /// Separate psum buffer, MB (0 when integrated).
    pub psum_mb: f64,
    /// Weight buffer, KB.
    pub weight_kb: f64,
    /// Registers per PE.
    pub regs: u32,
    /// Clock frequency, GHz.
    pub frequency_ghz: f64,
    /// Peak throughput, TMAC/s.
    pub peak_tmacs: f64,
    /// Area scaled to 28 nm, mm².
    pub area_mm2_28nm: f64,
}

/// The evaluation setup table (Table I), with the estimator filling in
/// frequency, peak performance and scaled area.
pub fn table1_setup() -> Vec<Table1Row> {
    const MB: f64 = 1024.0 * 1024.0;
    let lib = CellLibrary::aist_10um();
    let tpu = CmosNpuConfig::tpu_core();
    let mut rows = vec![Table1Row {
        design: "TPU".into(),
        array: (tpu.array_width, tpu.array_height),
        ifmap_mb: 24.0,
        output_mb: 0.0,
        psum_mb: 0.0,
        weight_kb: 0.0,
        regs: 1,
        frequency_ghz: tpu.frequency_ghz,
        peak_tmacs: tpu.peak_tmacs(),
        area_mm2_28nm: 330.0,
    }];
    for d in DesignPoint::SFQ_DESIGNS {
        let cfg = d.npu_config();
        let est = estimate(&cfg, &lib);
        rows.push(Table1Row {
            design: cfg.name.clone(),
            array: (cfg.array_width, cfg.array_height),
            ifmap_mb: cfg.ifmap_buf_bytes as f64 / MB,
            output_mb: cfg.output_buf_bytes as f64 / MB,
            psum_mb: cfg.psum_buf_bytes as f64 / MB,
            weight_kb: cfg.weight_buf_bytes as f64 / 1024.0,
            regs: cfg.regs_per_pe,
            frequency_ghz: est.frequency_ghz,
            peak_tmacs: est.peak_tmacs,
            area_mm2_28nm: est.area_mm2_28nm,
        });
    }
    rows
}

// ---------------------------------------------------------------- Table II

/// One workload row of Table II: the batch each design runs at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Workload.
    pub network: String,
    /// Batch for (TPU, Baseline, Buffer opt., Resource opt., SuperNPU).
    pub batches: [u32; 5],
}

/// The batch-size setup (Table II).
pub fn table2_batches() -> Vec<Table2Row> {
    let tpu = CmosNpuConfig::tpu_core();
    par_map(&paper_workloads(), |net| {
        let tpu_batch = dnn_models::batching::max_batch(
            net,
            tpu.buffer_bytes,
            1.0,
            dnn_models::batching::PAPER_BATCH_CAP,
        );
        let mut batches = [tpu_batch, 0, 0, 0, 0];
        for (i, d) in DesignPoint::SFQ_DESIGNS.iter().enumerate() {
            batches[i + 1] = structural_max_batch(&d.npu_config(), net);
        }
        Table2Row {
            network: net.name().to_owned(),
            batches,
        }
    })
}

// ---------------------------------------------------------------- Table III

/// One row of the power-efficiency evaluation (Table III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Variant name.
    pub variant: String,
    /// Power, watts.
    pub power_w: f64,
    /// Performance per watt normalized to the TPU.
    pub perf_per_watt_vs_tpu: f64,
}

/// The power-efficiency evaluation (Table III): RSFQ and ERSFQ
/// SuperNPU, with and without the 400× cooling overhead, against the
/// 40 W TPU core.
pub fn table3_power() -> Vec<Table3Row> {
    let cooling = cryo::CoolingModel::holmes_4k();
    let tpu = CmosNpuConfig::tpu_core();
    let nets = paper_workloads();

    // Average TPU throughput and SuperNPU throughput/power across the
    // workloads.
    let tpu_tmacs = par_map(&nets, |n| simulate_tpu(&tpu, n).effective_tmacs());
    let tpu_perf = geomean(&tpu_tmacs);
    let tpu_eff = cryo::PowerEfficiency::new(tpu_perf, tpu.chip_power_w);

    let mut rows = vec![Table3Row {
        variant: "TPU".into(),
        power_w: tpu.chip_power_w,
        perf_per_watt_vs_tpu: 1.0,
    }];

    for bias in [BiasScheme::Rsfq, BiasScheme::Ersfq] {
        let cfg = DesignPoint::SuperNpu.sim_config().with_bias(bias);
        let stats = par_map(&nets, |n| simulate_network(&cfg, n));
        let perf = geomean(
            &stats
                .iter()
                .map(|s| s.effective_tmacs())
                .collect::<Vec<_>>(),
        );
        let chip_w: f64 = stats.iter().map(|s| s.total_power_w()).sum::<f64>() / stats.len() as f64;
        for (cooled, label) in [(false, "w/o cooling"), (true, "w/ cooling")] {
            let power = if cooled {
                cooling.wall_power_w(chip_w)
            } else {
                chip_w
            };
            let eff = cryo::PowerEfficiency::new(perf, power);
            rows.push(Table3Row {
                variant: format!("{bias}-SuperNPU ({label})"),
                power_w: power,
                perf_per_watt_vs_tpu: eff.relative_to(&tpu_eff),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geomean(&[7.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn fig15_fractions_sum_to_one_and_prep_dominates() {
        for row in fig15_cycle_breakdown() {
            assert!((row.preparation + row.computation - 1.0).abs() < 1e-12);
            assert!(
                row.preparation > 0.75,
                "{}: prep {:.2}",
                row.network,
                row.preparation
            );
        }
    }

    #[test]
    fn fig17_effective_below_roofline_below_peak() {
        for row in fig17_roofline() {
            assert!(
                row.effective_gmacs <= row.roofline_gmacs * 1.05,
                "{}: {:.0} > roofline {:.0}",
                row.network,
                row.effective_gmacs,
                row.roofline_gmacs
            );
            assert!(row.roofline_gmacs <= row.peak_gmacs);
            // Fig. 17's point: >98% of peak is unreachable at batch 1.
            assert!(row.roofline_gmacs < 0.1 * row.peak_gmacs, "{}", row.network);
        }
    }

    #[test]
    fn fig23_supernpu_speedup_is_tens() {
        let rows = fig23_performance();
        let avg = average_speedup(&rows, DesignPoint::SuperNpu);
        // Paper: 23×. Accept the reproduction band.
        assert!(avg > 10.0 && avg < 40.0, "SuperNPU speedup {avg:.1}");
        // Baseline below the TPU (paper: 0.4×).
        let base = average_speedup(&rows, DesignPoint::Baseline);
        assert!(base < 1.0, "Baseline {base:.2}");
        // MobileNet shows the largest SuperNPU speedup (paper: ~42×).
        let best = rows
            .iter()
            .max_by(|a, b| {
                a.speedup(DesignPoint::SuperNpu)
                    .partial_cmp(&b.speedup(DesignPoint::SuperNpu))
                    .unwrap()
            })
            .unwrap();
        assert_eq!(best.network, "MobileNet");
    }

    #[test]
    fn table1_has_five_designs() {
        let rows = table1_setup();
        assert_eq!(rows.len(), 5);
        assert!((rows[1].frequency_ghz - 52.6).abs() < 1.5);
        // SuperNPU column: 64-wide, 8 regs.
        let s = rows.last().unwrap();
        assert_eq!(s.array.0, 64);
        assert_eq!(s.regs, 8);
    }

    #[test]
    fn table2_baseline_column_is_all_ones() {
        for row in table2_batches() {
            assert_eq!(row.batches[1], 1, "{}", row.network);
            // SuperNPU batch ≥ Buffer opt. batch.
            assert!(row.batches[4] >= row.batches[2], "{}", row.network);
        }
    }

    #[test]
    fn table3_shape_matches_paper() {
        let rows = table3_power();
        assert_eq!(rows.len(), 5);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.variant.contains(name))
                .unwrap_or_else(|| panic!("{name} row missing"))
        };
        let rsfq = get("RSFQ-SuperNPU (w/o");
        let rsfq_cool = get("RSFQ-SuperNPU (w/ ");
        let ersfq = get("ERSFQ-SuperNPU (w/o");
        let ersfq_cool = get("ERSFQ-SuperNPU (w/ ");
        // RSFQ chip power is hundreds of watts; ERSFQ is watt-scale.
        assert!(rsfq.power_w > 300.0, "RSFQ {:.0} W", rsfq.power_w);
        assert!(ersfq.power_w < 20.0, "ERSFQ {:.2} W", ersfq.power_w);
        // Cooling multiplies power by 400.
        assert!((rsfq_cool.power_w / rsfq.power_w - 400.0).abs() < 1.0);
        // Efficiency ordering: ERSFQ free-cooling ≫ TPU ≫ RSFQ cooled.
        assert!(
            ersfq.perf_per_watt_vs_tpu > 50.0,
            "{:.0}",
            ersfq.perf_per_watt_vs_tpu
        );
        assert!(rsfq_cool.perf_per_watt_vs_tpu < 0.05);
        assert!(ersfq_cool.perf_per_watt_vs_tpu > rsfq_cool.perf_per_watt_vs_tpu);
    }
}
