//! # supernpu
//!
//! A complete reproduction of *SuperNPU: An Extremely Fast Neural
//! Processing Unit Using Superconducting Logic Devices* (MICRO 2020):
//! the SFQ-NPU modeling framework, the cycle simulator, the CMOS TPU
//! comparator, and every experiment in the paper's analysis and
//! evaluation sections.
//!
//! The heavy lifting lives in the substrate crates; this crate is the
//! public face:
//!
//! * [`designs`] — the named design points of Table I (TPU, Baseline,
//!   Buffer opt., Resource opt., SuperNPU),
//! * [`evaluator`] — one function per paper table/figure, each
//!   returning typed rows ready for printing or plotting,
//! * [`explore`] — the design-space sweeps behind Figs. 20–22
//!   (buffer division, resource balancing, per-PE registers),
//! * [`ablations`] — architecture-level quantification of the §III
//!   design choices (dataflow, network, DAU, clocking),
//! * [`sensitivity`] — bandwidth / process-scaling / cooling-
//!   temperature what-ifs grounded in the paper's discussion,
//! * [`report`] — plain-text table rendering used by the `bench`
//!   binaries.
//!
//! # Quickstart
//!
//! ```
//! use supernpu::designs::DesignPoint;
//! use supernpu::evaluator;
//!
//! // How much faster is SuperNPU than the TPU core on ResNet-50?
//! let rows = evaluator::fig23_performance();
//! let resnet = rows.iter().find(|r| r.network == "ResNet50").unwrap();
//! let speedup = resnet.speedup(DesignPoint::SuperNpu);
//! assert!(speedup > 10.0, "SuperNPU speedup {speedup:.1}x");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod designs;
pub mod evaluator;
pub mod explore;
pub mod export;
pub mod latency;
pub mod pareto;
pub mod report;
pub mod resilient;
pub mod sensitivity;
pub mod summary;

pub use designs::DesignPoint;
