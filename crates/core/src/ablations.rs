//! Ablation studies for the design choices the paper argues in §III:
//! what SuperNPU would lose with the *other* choice at each decision
//! point (dataflow, network structure, data-alignment unit, clocking).
//!
//! The paper motivates each choice with circuit-level evidence
//! (Figs. 4–9); these ablations quantify the same choices at the
//! architecture level with the full simulator.

use dnn_models::Network;
use serde::{Deserialize, Serialize};
use sfq_cells::{CellLibrary, GateKind};
use sfq_estimator::clocking::{feedback_comparison, Clocking, PairTiming};
use sfq_estimator::netdesign::NetworkDesign;
use sfq_npu_sim::SimConfig;
use sfq_par::par_map;

use crate::designs::DesignPoint;
use crate::evaluator::{geomean, geomean_tmacs_over, paper_workloads};

/// One ablation row: the design choice, the alternative, and the
/// geomean throughput with each.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// What was changed.
    pub choice: String,
    /// The adopted design's geomean TMAC/s.
    pub adopted_tmacs: f64,
    /// The rejected alternative's geomean TMAC/s.
    pub alternative_tmacs: f64,
}

impl AblationRow {
    /// How much the adopted choice buys (adopted / alternative).
    pub fn gain(&self) -> f64 {
        self.adopted_tmacs / self.alternative_tmacs
    }
}

fn geomean_tmacs(cfg: &SimConfig, nets: &[Network]) -> f64 {
    geomean_tmacs_over(cfg, nets, false)
}

/// Scale a config's clock (and therefore everything cycle-timed) by a
/// frequency factor — used to model choices that change the achievable
/// clock rather than the cycle counts.
fn with_frequency(cfg: &SimConfig, frequency_ghz: f64) -> SimConfig {
    let mut out = cfg.clone();
    out.frequency_ghz = frequency_ghz;
    out
}

/// Ablation 1 — **dataflow**: weight-stationary (no feedback loop,
/// concurrent-flow clocking) vs output-stationary (accumulator
/// feedback loop forces counter-flow clocking; the whole PE array
/// drops to the Fig. 7(c) feedback frequency ratio).
pub fn ablation_dataflow() -> AblationRow {
    let lib = CellLibrary::aist_10um();
    let nets = paper_workloads();
    let ws = DesignPoint::SuperNpu.sim_config();
    let fb = feedback_comparison(&lib);
    // The OS PE's multiply-accumulate loop clocks like the
    // counter-flow full adder; keep every architectural parameter.
    let os_frequency = ws.frequency_ghz * fb.fa_feedback_ghz / fb.fa_feedforward_ghz;
    // The OS design does save the psum-accumulation traffic; with the
    // integrated buffer that traffic is already free, so the dominant
    // effect is the clock.
    let os = with_frequency(&ws, os_frequency);
    AblationRow {
        choice: "PE dataflow: weight-stationary vs output-stationary".into(),
        adopted_tmacs: geomean_tmacs(&ws, &nets),
        alternative_tmacs: geomean_tmacs(&os, &nets),
    }
}

/// Ablation 2 — **network**: the 2D systolic store-and-forward chain
/// vs a 2D splitter-tree fan-out network, whose data/clock arrival
/// mismatch caps the whole chip's clock (Fig. 5(a)).
pub fn ablation_network() -> AblationRow {
    let lib = CellLibrary::aist_10um();
    let nets = paper_workloads();
    let systolic = DesignPoint::SuperNpu.sim_config();
    let width = systolic.npu.array_width;
    let tree_cct_ps = NetworkDesign::SplitterTree2d.critical_path_ps(width, &lib);
    let tree_ghz = (1000.0 / tree_cct_ps).min(systolic.frequency_ghz);
    let tree = with_frequency(&systolic, tree_ghz);
    AblationRow {
        choice: "on-chip network: systolic chain vs 2D splitter tree".into(),
        adopted_tmacs: geomean_tmacs(&systolic, &nets),
        alternative_tmacs: geomean_tmacs(&tree, &nets),
    }
}

/// Ablation 3 — **data-alignment unit**: with the DAU, the ifmap
/// buffer stores each pixel once; without it, adjacent PE rows hold
/// duplicated pixels (Fig. 8, >90% for VGG-class nets), slashing the
/// effective ifmap capacity and therefore the on-chip batch.
pub fn ablation_dau() -> AblationRow {
    let nets = paper_workloads();
    let with_dau = DesignPoint::SuperNpu.sim_config();
    let mut without = with_dau.clone();
    // Average duplication across the six workloads ≈ 75–90%; model the
    // capacity loss with the per-network duplication factors by
    // derating the ifmap buffer by the geomean duplicated share.
    let dup = geomean(
        &nets
            .iter()
            .map(|n| 1.0 - dnn_models::duplication::network_duplication(n).duplicated_ratio())
            .collect::<Vec<_>>(),
    );
    without.npu.ifmap_buf_bytes = (with_dau.npu.ifmap_buf_bytes as f64 * dup) as u64;
    AblationRow {
        choice: "data-alignment unit: dedup vs duplicated ifmap buffering".into(),
        adopted_tmacs: geomean_tmacs(&with_dau, &nets),
        alternative_tmacs: geomean_tmacs(&without, &nets),
    }
}

/// Ablation 4 — **clocking**: concurrent-flow with skew tuning vs
/// counter-flow everywhere (the conservative choice a designer without
/// skew-tuning tooling would make).
pub fn ablation_clocking() -> AblationRow {
    let lib = CellLibrary::aist_10um();
    let nets = paper_workloads();
    let tuned = DesignPoint::SuperNpu.sim_config();
    // Counter-flow PE critical pair: same gates, counter-flow scheme.
    let counter = PairTiming {
        src: GateKind::And,
        dst: GateKind::And,
        data_wire_ps: 4.0 + 3.3,
        clock_wire_ps: 0.6,
        clocking: Clocking::CounterFlow,
    };
    let conservative = with_frequency(&tuned, counter.frequency_ghz(&lib));
    AblationRow {
        choice: "clocking: concurrent-flow (skewed) vs counter-flow".into(),
        adopted_tmacs: geomean_tmacs(&tuned, &nets),
        alternative_tmacs: geomean_tmacs(&conservative, &nets),
    }
}

/// Ablation 5 — **PE arithmetic**: the gate-level-pipelined
/// bit-parallel multiplier (demonstrated at ~50 GHz, the paper's
/// enabling circuit) vs the bit-serial datapaths of earlier SFQ
/// microprocessors (CORE1α/e4, §VII). A bit-serial PE clocks faster
/// (a skew-tuned DFF/FA chain) but needs one cycle per operand bit,
/// dividing per-PE throughput by the datapath width.
pub fn ablation_bitserial() -> AblationRow {
    let lib = CellLibrary::aist_10um();
    let nets = paper_workloads();
    let parallel = DesignPoint::SuperNpu.sim_config();
    let fb = feedback_comparison(&lib);
    let bits = f64::from(parallel.npu.bits);
    // Serial clock: the skew-tuned shift-register rate; effective MAC
    // rate divides by the bit width.
    let serial_effective_ghz = fb.sr_feedforward_ghz / bits;
    let serial = with_frequency(&parallel, serial_effective_ghz);
    AblationRow {
        choice: "PE arithmetic: bit-parallel pipelined vs bit-serial".into(),
        adopted_tmacs: geomean_tmacs(&parallel, &nets),
        alternative_tmacs: geomean_tmacs(&serial, &nets),
    }
}

/// Run all five ablations, fanned out across threads (each ablation is
/// independent; results keep this fixed order).
pub fn all_ablations() -> Vec<AblationRow> {
    let runs: [fn() -> AblationRow; 5] = [
        ablation_dataflow,
        ablation_network,
        ablation_dau,
        ablation_clocking,
        ablation_bitserial,
    ];
    par_map(&runs, |run| run())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_adopted_choice_wins() {
        let rows = all_ablations();
        assert_eq!(rows.len(), 5);
        for row in rows {
            assert!(row.gain() > 1.0, "{}: gain {:.2}", row.choice, row.gain());
        }
    }

    #[test]
    fn bitserial_costs_most_of_the_clock_advantage() {
        // 8-bit serial arithmetic at ~133 GHz nets ~16.6 GHz of MAC
        // rate: between 1.5x and 4x slower end-to-end (memory-bound
        // layers dilute the gap).
        let row = ablation_bitserial();
        assert!(
            row.gain() > 1.3 && row.gain() < 5.0,
            "gain {:.2}",
            row.gain()
        );
    }

    #[test]
    fn network_ablation_is_catastrophic() {
        // A 64-wide 2D tree caps the clock near 1 GHz — the systolic
        // choice is worth an order of magnitude.
        let row = ablation_network();
        assert!(row.gain() > 5.0, "gain {:.1}", row.gain());
    }

    #[test]
    fn dataflow_ablation_tracks_fig7_ratio() {
        // The WS/OS throughput ratio should track the Fig. 7(c)
        // clock ratio (~2.2x) within the compute-bound share.
        let row = ablation_dataflow();
        assert!(
            row.gain() > 1.2 && row.gain() < 3.0,
            "gain {:.2}",
            row.gain()
        );
    }

    #[test]
    fn dau_ablation_costs_batch() {
        let row = ablation_dau();
        assert!(row.gain() > 1.05, "gain {:.2}", row.gain());
    }
}
