//! Pareto-frontier design-space exploration: performance vs silicon,
//! the decision the paper makes implicitly when it trades PE columns
//! for buffer capacity (Fig. 21) — made explicit over a larger grid.

use serde::{Deserialize, Serialize};
use sfq_cells::CellLibrary;
use sfq_estimator::{estimate, NpuConfig};
use sfq_npu_sim::SimConfig;
use sfq_par::par_map_keyed;

use crate::evaluator::{geomean_tmacs_over, paper_workloads};
use crate::resilient::{run_resilient, sweep_identity, ResilientOpts, SweepError, SweepReport};

const MB: u64 = 1024 * 1024;

/// One evaluated candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Candidate name (geometry summary).
    pub name: String,
    /// PE-array width.
    pub width: u32,
    /// Buffer division degree.
    pub division: u32,
    /// Registers per PE.
    pub regs: u32,
    /// Total activation buffering, MB.
    pub buffer_mb: u64,
    /// Geomean throughput over the six workloads, TMAC/s.
    pub tmacs: f64,
    /// Area scaled to 28 nm, mm².
    pub area_mm2: f64,
}

impl Candidate {
    /// Whether `self` dominates `other` (at least as good on both
    /// axes, strictly better on one).
    pub fn dominates(&self, other: &Candidate) -> bool {
        let ge = self.tmacs >= other.tmacs && self.area_mm2 <= other.area_mm2;
        let gt = self.tmacs > other.tmacs || self.area_mm2 < other.area_mm2;
        ge && gt
    }
}

/// Evaluate a grid of candidates around the paper's design region.
/// Candidates are independent, so the grid fans out across threads
/// via [`sfq_par::par_map_keyed`], keyed by array width: candidates
/// sharing a width reuse the same estimate/characterization working
/// set, so affining them to one worker keeps those memos cache-warm
/// while stealing still rebalances if one width runs long.
pub fn evaluate_grid() -> Vec<Candidate> {
    let _trace = sfq_obs::trace::span("sweep", "pareto grid");
    let points = grid_points();

    // Shared across candidates: the cell library and workload zoo are
    // immutable inputs, built once instead of once per grid point.
    let lib = CellLibrary::aist_10um();
    let nets = paper_workloads();

    par_map_keyed(
        &points,
        |&(width, _, _)| u64::from(width),
        |&(width, buffer_mb, regs)| candidate(&lib, &nets, width, buffer_mb, regs),
    )
}

fn grid_points() -> Vec<(u32, u64, u32)> {
    let mut points = Vec::new();
    for &width in &[32u32, 64, 128, 256] {
        for &buffer_mb in &[24u64, 36, 48] {
            for &regs in &[1u32, 8] {
                points.push((width, buffer_mb, regs));
            }
        }
    }
    points
}

fn candidate(
    lib: &CellLibrary,
    nets: &[dnn_models::Network],
    width: u32,
    buffer_mb: u64,
    regs: u32,
) -> Candidate {
    let division = 64 * (256 / width).max(1);
    let npu = NpuConfig {
        name: format!("w{width}/b{buffer_mb}/r{regs}"),
        array_width: width,
        regs_per_pe: regs,
        division,
        ifmap_buf_bytes: buffer_mb * MB / 2,
        output_buf_bytes: buffer_mb * MB / 2,
        psum_buf_bytes: 0,
        integrated_output: true,
        ..NpuConfig::paper_baseline()
    };
    let est = estimate(&npu, lib);
    let cfg = SimConfig::from_npu(npu.clone(), lib);
    let tmacs = geomean_tmacs_over(&cfg, nets, false);
    Candidate {
        name: npu.name,
        width,
        division,
        regs,
        buffer_mb,
        tmacs,
        area_mm2: est.area_mm2_28nm,
    }
}

/// [`evaluate_grid`] under execution guards: whole-grid
/// deadline/cancel budget, retry-with-backoff, per-candidate terminal
/// labels, and crash-safe checkpoint/resume, via
/// [`crate::resilient::run_resilient`].
///
/// # Errors
///
/// Checkpoint-layer trouble only; see [`SweepError`].
pub fn evaluate_grid_resilient(opts: &ResilientOpts) -> Result<SweepReport<Candidate>, SweepError> {
    let _trace = sfq_obs::trace::span("sweep", "pareto grid (resilient)");
    let points = grid_points();
    let lib = CellLibrary::aist_10um();
    let nets = paper_workloads();
    let eval = |i: usize| {
        let (width, buffer_mb, regs) = points[i];
        candidate(&lib, &nets, width, buffer_mb, regs)
    };
    let ident: Vec<u64> = points
        .iter()
        .map(|&(w, b, r)| (u64::from(w) << 40) | (b << 8) | u64::from(r))
        .collect();
    let eval = &eval;
    run_resilient(
        "pareto_grid",
        sweep_identity(&ident),
        points.len(),
        opts,
        eval,
        Some(eval),
    )
}

/// Extract the Pareto-optimal subset (max throughput, min area),
/// sorted by area.
pub fn pareto_front(candidates: &[Candidate]) -> Vec<Candidate> {
    let mut front: Vec<Candidate> = candidates
        .iter()
        .filter(|c| !candidates.iter().any(|o| o.dominates(c)))
        .cloned()
        .collect();
    front.sort_by(|a, b| a.area_mm2.total_cmp(&b.area_mm2));
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_strict() {
        let a = Candidate {
            name: "a".into(),
            width: 64,
            division: 256,
            regs: 8,
            buffer_mb: 48,
            tmacs: 100.0,
            area_mm2: 200.0,
        };
        let worse = Candidate {
            name: "b".into(),
            tmacs: 90.0,
            area_mm2: 220.0,
            ..a.clone()
        };
        let equal = a.clone();
        assert!(a.dominates(&worse));
        assert!(!a.dominates(&equal));
        assert!(!worse.dominates(&a));
    }

    #[test]
    fn front_is_nonempty_and_monotone() {
        let grid = evaluate_grid();
        assert_eq!(grid.len(), 24);
        let front = pareto_front(&grid);
        assert!(!front.is_empty() && front.len() <= grid.len());
        // Along the front, more area must buy more throughput.
        for pair in front.windows(2) {
            assert!(pair[1].area_mm2 >= pair[0].area_mm2);
            assert!(pair[1].tmacs >= pair[0].tmacs, "front not monotone");
        }
        // No front member is dominated by any grid member.
        for f in &front {
            assert!(!grid.iter().any(|g| g.dominates(f)), "{} dominated", f.name);
        }
    }

    #[test]
    fn paper_region_is_on_or_near_the_front() {
        // Some 64-wide, 8-register candidate must make the front —
        // the paper's chosen region is Pareto-sensible in our model.
        let front = pareto_front(&evaluate_grid());
        assert!(
            front.iter().any(|c| c.width == 64 && c.regs == 8),
            "front: {:?}",
            front.iter().map(|c| c.name.clone()).collect::<Vec<_>>()
        );
    }
}
