//! CSV export of every figure's data series — plot-ready artifacts
//! for regenerating the paper's charts with any plotting tool.

use std::fmt::Write as _;

use crate::designs::DesignPoint;
use crate::evaluator;
use crate::explore;

/// Render rows as CSV (header + records). Fields containing commas or
/// quotes are quoted.
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let escape = |field: &str| {
        if field.contains(',') || field.contains('"') || field.contains('\n') {
            format!("\"{}\"", field.replace('"', "\"\""))
        } else {
            field.to_owned()
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}",
        headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(",")
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{}",
            row.iter().map(|f| escape(f)).collect::<Vec<_>>().join(",")
        );
    }
    out
}

/// Pretty-printed JSON of the current [`sfq_obs`] metrics snapshot,
/// or `None` when metrics are disabled (`SUPERNPU_METRICS` unset).
/// Experiment binaries write this as `metrics.json` next to their
/// result files so every sweep run carries its own diagnostics.
pub fn metrics_json() -> Option<String> {
    sfq_obs::enabled().then(|| {
        serde_json::to_string_pretty(&sfq_obs::snapshot())
            .unwrap_or_else(|e| unreachable!("metrics snapshot serializes infallibly: {e}"))
    })
}

/// Write `metrics.json` into `dir` when metrics are enabled; returns
/// the path written, if any.
///
/// # Errors
///
/// Propagates the filesystem error when the write fails.
pub fn write_metrics_json(dir: &std::path::Path) -> std::io::Result<Option<std::path::PathBuf>> {
    match metrics_json() {
        None => Ok(None),
        Some(json) => {
            let path = dir.join("metrics.json");
            std::fs::write(&path, json)?;
            Ok(Some(path))
        }
    }
}

/// Build the cycle-domain Chrome trace of `net` on `cfg` at `batch`:
/// access traces of every layer laid end to end as Perfetto tracks
/// (see [`sfq_npu_sim::chrome_cycle_trace`]). Deterministic — cycle
/// timestamps come from the cost model, not the wall clock, so the
/// output is bit-identical at any `SUPERNPU_THREADS`.
pub fn cycle_trace(
    cfg: &sfq_npu_sim::SimConfig,
    net: &dnn_models::Network,
    batch: u32,
) -> sfq_obs::trace::ChromeTrace {
    let traces = sfq_npu_sim::trace_network(cfg, net, batch);
    sfq_npu_sim::chrome_cycle_trace(cfg, &traces)
}

/// Write the cycle-domain Chrome trace of `net` to `path` as Chrome
/// trace-event JSON (loadable in Perfetto / `chrome://tracing`).
///
/// # Errors
///
/// Propagates the filesystem error when the write fails.
pub fn write_trace_json(
    path: &std::path::Path,
    cfg: &sfq_npu_sim::SimConfig,
    net: &dnn_models::Network,
    batch: u32,
) -> std::io::Result<()> {
    cycle_trace(cfg, net, batch).write(path)
}

/// One exported dataset: file stem and CSV contents.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// File stem, e.g. `fig23_performance`.
    pub name: String,
    /// CSV payload.
    pub csv: String,
}

/// Produce every figure's data series.
pub fn all_datasets() -> Vec<Dataset> {
    let mut out = Vec::new();

    let fig15 = evaluator::fig15_cycle_breakdown();
    out.push(Dataset {
        name: "fig15_breakdown".into(),
        csv: to_csv(
            &["network", "preparation", "computation"],
            &fig15
                .iter()
                .map(|r| {
                    vec![
                        r.network.clone(),
                        r.preparation.to_string(),
                        r.computation.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ),
    });

    let fig17 = evaluator::fig17_roofline();
    out.push(Dataset {
        name: "fig17_roofline".into(),
        csv: to_csv(
            &[
                "network",
                "mac_per_byte",
                "roofline_gmacs",
                "effective_gmacs",
                "peak_gmacs",
            ],
            &fig17
                .iter()
                .map(|r| {
                    vec![
                        r.network.clone(),
                        r.intensity_mac_per_byte.to_string(),
                        r.roofline_gmacs.to_string(),
                        r.effective_gmacs.to_string(),
                        r.peak_gmacs.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ),
    });

    let fig20 = explore::fig20_buffer_sweep();
    out.push(Dataset {
        name: "fig20_buffer_opt".into(),
        csv: to_csv(
            &["label", "division", "single_batch", "max_batch", "area"],
            &fig20
                .iter()
                .map(|p| {
                    vec![
                        p.label.clone(),
                        p.division.to_string(),
                        p.single_batch.to_string(),
                        p.max_batch.to_string(),
                        p.area.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ),
    });

    let fig21 = explore::fig21_resource_sweep();
    out.push(Dataset {
        name: "fig21_resource_balance".into(),
        csv: to_csv(
            &[
                "width",
                "buffer_mb",
                "fixed_buffer",
                "added_buffer",
                "intensity",
            ],
            &fig21
                .iter()
                .map(|p| {
                    vec![
                        p.width.to_string(),
                        p.buffer_mb.to_string(),
                        p.max_batch_fixed_buffer.to_string(),
                        p.max_batch_added_buffer.to_string(),
                        p.intensity.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ),
    });

    let fig22 = explore::fig22_register_sweep();
    out.push(Dataset {
        name: "fig22_registers".into(),
        csv: to_csv(
            &["width", "regs", "performance"],
            &fig22
                .iter()
                .map(|p| {
                    vec![
                        p.width.to_string(),
                        p.regs.to_string(),
                        p.performance.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ),
    });

    let fig23 = evaluator::fig23_performance();
    out.push(Dataset {
        name: "fig23_performance".into(),
        csv: to_csv(
            &[
                "network",
                "tpu_tmacs",
                "baseline_x",
                "buffer_opt_x",
                "resource_opt_x",
                "supernpu_x",
            ],
            &fig23
                .iter()
                .map(|r| {
                    vec![
                        r.network.clone(),
                        r.tpu_tmacs.to_string(),
                        r.speedup(DesignPoint::Baseline).to_string(),
                        r.speedup(DesignPoint::BufferOpt).to_string(),
                        r.speedup(DesignPoint::ResourceOpt).to_string(),
                        r.speedup(DesignPoint::SuperNpu).to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ),
    });

    let table3 = evaluator::table3_power();
    out.push(Dataset {
        name: "table3_power".into(),
        csv: to_csv(
            &["variant", "power_w", "perf_per_watt_vs_tpu"],
            &table3
                .iter()
                .map(|r| {
                    vec![
                        r.variant.clone(),
                        r.power_w.to_string(),
                        r.perf_per_watt_vs_tpu.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ),
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escaping() {
        let csv = to_csv(
            &["a", "b"],
            &[
                vec!["plain".into(), "with,comma".into()],
                vec!["with\"quote".into(), "x".into()],
            ],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert_eq!(lines[2], "\"with\"\"quote\",x");
    }

    #[test]
    fn all_datasets_are_parseable_csv() {
        let sets = all_datasets();
        assert_eq!(sets.len(), 7);
        for d in &sets {
            let mut lines = d.csv.lines();
            let header_cols = lines.next().expect("header").split(',').count();
            let mut records = 0;
            for line in lines {
                assert_eq!(
                    line.split(',').count(),
                    header_cols,
                    "{}: ragged row",
                    d.name
                );
                records += 1;
            }
            assert!(records >= 5, "{}: only {records} records", d.name);
        }
    }
}
