//! Umbrella crate re-exporting the SuperNPU reproduction workspace.
pub use supernpu as core;
