//! Circuit lab: play with the transient Josephson-junction simulator —
//! watch SFQ pulses propagate down a JTL, get stored in a DFF, and
//! released by a clock, exactly like the waveforms in the paper's
//! Fig. 1.
//!
//! Run with: `cargo run --example circuit_lab --release`

use jjsim::stdlib::{dff, jtl_chain, shift_register, DffParams, JtlParams};
use jjsim::{SimOptions, Solver};

fn main() {
    // 1. A pulse travels down an 8-stage Josephson transmission line.
    let (ckt, stages) = jtl_chain(8, &JtlParams::default());
    let out = Solver::new(ckt, SimOptions::default())
        .expect("valid circuit")
        .run(250e-12);
    println!("JTL pulse arrival times (input pulse at 60 ps):");
    for (k, jj) in stages.iter().enumerate() {
        let t = out.pulse_times(*jj).first().copied().unwrap_or(f64::NAN);
        println!("  stage {k}: {:6.2} ps", t * 1e12);
    }
    let delay = (out.pulse_times(stages[7])[0] - out.pulse_times(stages[0])[0]) / 7.0 * 1e12;
    println!(
        "  -> {delay:.2} ps per stage, {:.2} aJ dissipated per switching\n",
        out.dissipated_j / 8.0 * 1e18
    );

    // 2. A DFF stores a fluxon and releases it on the clock.
    let p = DffParams::default();
    let (ckt, probes) = dff(&[60e-12], &[100e-12], &p);
    let out = Solver::new(ckt, SimOptions::default())
        .expect("valid circuit")
        .run(180e-12);
    println!("DFF: data at 60 ps, clock at 100 ps");
    println!(
        "  stored (input junction slip)  : {:6.2} ps",
        out.pulse_times(probes.input)[0] * 1e12
    );
    println!(
        "  released (readout slip)       : {:6.2} ps",
        out.pulse_times(probes.output)[0] * 1e12
    );

    // A clock with no stored data must read '0'.
    let (ckt, probes) = dff(&[], &[100e-12], &p);
    let out = Solver::new(ckt, SimOptions::default())
        .expect("valid circuit")
        .run(180e-12);
    println!(
        "  clock-without-data output pulses: {} (must be 0)\n",
        out.pulse_count(probes.output)
    );

    // 3. A 4-stage shift register — the paper's on-chip memory element.
    let clocks: Vec<f64> = (0..4).map(|k| 100e-12 + 40e-12 * k as f64).collect();
    let (ckt, probes) = shift_register(4, 60e-12, &clocks, 0.0, &p);
    let out = Solver::new(ckt, SimOptions::default())
        .expect("valid circuit")
        .run(320e-12);
    println!("shift register: one '1' advancing a stage per clock (clocks every 40 ps):");
    for (k, jj) in probes.stage_outputs.iter().enumerate() {
        let t = out.pulse_times(*jj).first().copied().unwrap_or(f64::NAN);
        println!("  left stage {k} at {:6.2} ps", t * 1e12);
    }
}
