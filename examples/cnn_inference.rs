//! Per-layer inference anatomy: where the cycles go when a CNN runs on
//! an SFQ NPU, for both the naïve Baseline and the optimized SuperNPU.
//! This is the per-layer view behind the paper's Fig. 15.
//!
//! Run with: `cargo run --example cnn_inference --release [network]`
//! where `network` is one of alexnet, fasterrcnn, googlenet,
//! mobilenet, resnet50, vgg16 (default: googlenet).

use dnn_models::{zoo, Network};
use sfq_npu_sim::{simulate_network, SimConfig};

fn pick(name: &str) -> Network {
    match name.to_ascii_lowercase().as_str() {
        "alexnet" => zoo::alexnet(),
        "fasterrcnn" => zoo::faster_rcnn(),
        "googlenet" => zoo::googlenet(),
        "mobilenet" => zoo::mobilenet(),
        "resnet50" => zoo::resnet50(),
        "vgg16" => zoo::vgg16(),
        other => {
            eprintln!("unknown network '{other}', using googlenet");
            zoo::googlenet()
        }
    }
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "googlenet".into());
    let net = pick(&name);
    println!("{net}");

    for cfg in [SimConfig::paper_baseline(), SimConfig::paper_supernpu()] {
        let s = simulate_network(&cfg, &net);
        println!(
            "\n== {} (batch {}, {:.1} GHz) ==",
            cfg.npu.name, s.batch, s.frequency_ghz
        );
        println!(
            "{:18} {:>9} {:>12} {:>12} {:>10} {:>8}",
            "layer", "mappings", "prep cyc", "compute cyc", "stall cyc", "MAC%"
        );
        let total_macs = s.total_macs() as f64;
        // Print the five most expensive layers.
        let mut by_cost: Vec<_> = s.layers.iter().collect();
        by_cost.sort_by_key(|l| std::cmp::Reverse(l.total_cycles()));
        for l in by_cost.iter().take(5) {
            println!(
                "{:18} {:>9} {:>12} {:>12} {:>10} {:>7.1}%",
                l.name,
                l.mappings,
                l.prep_cycles,
                l.compute_cycles,
                l.stall_cycles,
                100.0 * l.macs as f64 / total_macs
            );
        }
        println!(
            "totals: {:.2} ms for batch {}, {:.1} TMAC/s, prep fraction {:.1}%, {:.1} MB off-chip",
            s.time_s() * 1e3,
            s.batch,
            s.effective_tmacs(),
            100.0 * s.prep_fraction(),
            s.dram_bytes() as f64 / 1e6
        );
        let e = s.dynamic_energy();
        println!(
            "energy: PE {:.1}% | buffers {:.1}% | DAU {:.1}% | NW {:.1}% | clock {:.1}%  (chip {:.2} W)",
            100.0 * e.pe_j / e.total_j(),
            100.0 * e.buffer_j / e.total_j(),
            100.0 * e.dau_j / e.total_j(),
            100.0 * e.nw_j / e.total_j(),
            100.0 * e.clock_j / e.total_j(),
            s.total_power_w()
        );
    }
}
