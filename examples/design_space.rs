//! Design-space exploration: sweep buffer division, PE-array width and
//! per-PE registers to find your own SFQ-optimal NPU — the workflow of
//! the paper's §V, driven through the public API.
//!
//! Run with: `cargo run --example design_space --release`

use dnn_models::zoo;
use sfq_cells::CellLibrary;
use sfq_estimator::{estimate, NpuConfig};
use sfq_npu_sim::{simulate_network, SimConfig};
use supernpu::evaluator::geomean;

const MB: u64 = 1024 * 1024;

/// Geomean TMAC/s of a candidate over the six paper workloads.
fn score(cfg: &SimConfig) -> f64 {
    let v: Vec<f64> = zoo::all()
        .iter()
        .map(|n| simulate_network(cfg, n).effective_tmacs())
        .collect();
    geomean(&v)
}

fn main() {
    let lib = CellLibrary::aist_10um();
    let mut best: Option<(String, f64, f64)> = None;

    println!("candidate                         geomean TMAC/s   area mm^2 @28nm");
    println!("-------------------------------------------------------------------");
    for width in [32u32, 64, 128] {
        for division in [64u32, 256, 1024] {
            for regs in [1u32, 4, 8] {
                // Keep total silicon roughly constant: narrower arrays
                // fund bigger buffers (the paper's Fig. 21 trade).
                let buffer_mb = match width {
                    32 => 50,
                    64 => 46,
                    _ => 38,
                };
                let npu = NpuConfig {
                    name: format!("w{width}/d{division}/r{regs}"),
                    array_width: width,
                    regs_per_pe: regs,
                    division,
                    ifmap_buf_bytes: buffer_mb * MB / 2,
                    output_buf_bytes: buffer_mb * MB / 2,
                    psum_buf_bytes: 0,
                    integrated_output: true,
                    ..NpuConfig::paper_baseline()
                };
                let est = estimate(&npu, &lib);
                let cfg = SimConfig::from_npu(npu, &lib);
                let s = score(&cfg);
                println!(
                    "{:32}  {:14.1}   {:15.0}",
                    cfg.npu.name, s, est.area_mm2_28nm
                );
                if best.as_ref().is_none_or(|(_, b, _)| s > *b) {
                    best = Some((cfg.npu.name.clone(), s, est.area_mm2_28nm));
                }
            }
        }
    }

    let (name, s, area) = best.expect("sweep is non-empty");
    println!("\nbest candidate: {name} at {s:.1} TMAC/s ({area:.0} mm^2 @28nm)");
    println!("paper's pick  : width 64, division 256, 8 regs (SuperNPU)");
}
