//! Value-level systolic simulation: watch the weight-stationary array
//! compute a real convolution, tile by tile, and verify it against a
//! direct reference — evidence that the timing model's dataflow
//! actually produces correct numbers.
//!
//! Run with: `cargo run --example functional_conv --release`

use dnn_models::Layer;
use sfq_npu_sim::functional::{golden_conv, run_conv_ws, Tensor3, Tensor4};
use sfq_npu_sim::{enumerate_mappings, SimConfig};

fn main() {
    // A small but fully tiled case: contraction 3·3·5 = 45 rows over a
    // 16-tall array (3 row groups), 13 filters over 4 columns with 2
    // registers per PE (2 column groups, ragged register bank).
    let layer = Layer::conv("demo", (8, 8), 5, 13, 3, 1, 1);
    let (height, width, regs) = (16u32, 4u32, 2u32);

    let mut seed = 42u64;
    let mut gen = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        ((seed >> 32) as i32 % 11) - 5
    };
    let ifmap = Tensor3::from_fn(8, 8, 5, |_, _, _| gen());
    let weights = Tensor4::from_fn(13, 3, 3, 5, |_, _, _, _| gen());

    // Show the tiling the mapper chooses (the same one the cycle model
    // charges for).
    let npu = sfq_estimator::NpuConfig {
        array_height: height,
        array_width: width,
        regs_per_pe: regs,
        ..SimConfig::paper_baseline().npu
    };
    println!("{layer}");
    println!("array: {height} rows x {width} cols x {regs} regs\n");
    println!(
        "{:>4} {:>4} {:>6} {:>8} {:>6} {:>6}",
        "rowG", "colG", "rows", "filters", "cols", "reuse"
    );
    for m in enumerate_mappings(&layer, &npu) {
        println!(
            "{:>4} {:>4} {:>6} {:>8} {:>6} {:>6}",
            m.row_group,
            m.col_group,
            m.active_rows,
            m.active_filters,
            m.active_cols,
            m.reuse_per_pe
        );
    }

    let systolic = run_conv_ws(&layer, &ifmap, &weights, height, width, regs);
    let golden = golden_conv(&layer, &ifmap, &weights);
    assert_eq!(systolic, golden, "systolic result must match the reference");
    println!("\nsystolic output == direct convolution: verified bit-exact.");

    // Peek at one output position across all 13 filters.
    print!("ofmap[3][4][0..13] = [");
    for k in 0..13 {
        print!("{}{}", if k > 0 { ", " } else { "" }, systolic.get(3, 4, k));
    }
    println!("]");
}
