//! Event-tracing tour: record a transient solve, a design-space sweep
//! on the worker pool, and an NPU access trace into one Chrome
//! trace-event JSON file, then re-read and validate it.
//!
//! Run with:
//!
//! ```text
//! SUPERNPU_TRACE=out.json cargo run --example trace --release
//! ```
//!
//! (Without the variable the example defaults to `trace.json` in the
//! current directory so it works out of the box.) Load the file in
//! <https://ui.perfetto.dev> or `chrome://tracing`: process 1 holds
//! the wall-clock tracks (main thread, `pool worker N`), process 2
//! the deterministic cycle-domain tracks of the NPU simulator.
//!
//! The example exits nonzero if the written file is not valid Chrome
//! trace JSON or is missing any of the expected track families, so
//! `scripts/check.sh` uses it as the end-to-end tracing gate.

use std::process::ExitCode;

use serde_json::Value;

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.as_object()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

fn main() -> ExitCode {
    // Honor SUPERNPU_TRACE when set; default so the example works
    // without any environment. Detail mode adds the solver's per-step
    // accept/reject/restamp instants.
    if sfq_obs::trace::path().is_none() {
        sfq_obs::trace::set_trace(Some("trace.json"));
    }
    sfq_obs::trace::set_detail(true);
    sfq_par::set_threads(sfq_par::threads().max(2));

    // 1. A transient solve — one `solver.run` slice plus detail
    //    instants on the jjsim track.
    let (ckt, stages) = jjsim::stdlib::jtl_chain(8, &jjsim::stdlib::JtlParams::default());
    let out = jjsim::Solver::new(ckt, jjsim::SimOptions::default())
        .expect("valid circuit")
        .run(250e-12);
    println!(
        "jtl solve: pulse reaches stage 7 at {:.2} ps",
        out.pulse_times(stages[7]).first().copied().unwrap_or(0.0) * 1e12
    );

    // 2. A design-space sweep — the `sweep` slice plus `pool worker N`
    //    task slices from the par_map fan-out.
    let points = supernpu::explore::fig20_buffer_sweep();
    println!("fig20 sweep: {} points", points.len());

    // 3. The cycle-domain process: AlexNet's access trace as
    //    deterministic cycle-timestamped tracks (1 µs = 1 cycle).
    let cfg = sfq_npu_sim::SimConfig::paper_supernpu();
    let net = dnn_models::zoo::alexnet();
    let mut ct = supernpu::export::cycle_trace(&cfg, &net, 4);

    // Merge the wall-clock events recorded above and write one file.
    sfq_obs::trace::drain_into(&mut ct);
    let path = sfq_obs::trace::path().expect("trace path was set above");
    if let Err(e) = ct.write(&path) {
        eprintln!("FAIL: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {} events to {}", ct.len(), path.display());

    // 4. Validate: parse the file back and check the required fields
    //    and track families are all present.
    let raw = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("FAIL: cannot re-read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let parsed: Value = match serde_json::from_str(&raw) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("FAIL: trace file is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(events) = get(&parsed, "traceEvents").and_then(Value::as_array) else {
        eprintln!("FAIL: no traceEvents array");
        return ExitCode::FAILURE;
    };
    let mut failures = Vec::new();
    if events.is_empty() {
        failures.push("traceEvents is empty".to_owned());
    }
    for (i, e) in events.iter().enumerate() {
        for field in ["ph", "ts", "pid", "tid", "name"] {
            if get(e, field).is_none() {
                failures.push(format!("event {i} lacks required field '{field}'"));
            }
        }
    }
    // Track families: pool workers and named categories.
    type Pred<'a> = &'a dyn Fn(&Value) -> bool;
    let has = |pred: Pred| events.iter().any(pred);
    let cat_is = |e: &Value, want: &str| get(e, "cat").and_then(Value::as_str) == Some(want);
    let meta_name_contains = |e: &Value, want: &str| {
        get(e, "ph").and_then(Value::as_str) == Some("M")
            && get(e, "args")
                .and_then(|a| get(a, "name"))
                .and_then(Value::as_str)
                .is_some_and(|n| n.contains(want))
    };
    let checks: [(&str, Pred); 5] = [
        ("pool worker track", &|e| {
            meta_name_contains(e, "pool worker")
        }),
        ("solver slice", &|e| cat_is(e, "jjsim")),
        ("sweep slice", &|e| cat_is(e, "sweep")),
        ("npusim cycle slice", &|e| {
            cat_is(e, "npusim")
                && get(e, "pid").and_then(Value::as_u64)
                    == Some(u64::from(sfq_obs::trace::CYCLE_PID))
        }),
        ("pe array track", &|e| meta_name_contains(e, "pe array")),
    ];
    for (what, pred) in checks {
        if !has(pred) {
            failures.push(format!("missing {what}"));
        }
    }

    if failures.is_empty() {
        println!(
            "trace OK: {} events, all required fields present, all track families found",
            events.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
