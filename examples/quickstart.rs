//! Quickstart: estimate an SFQ NPU, simulate a CNN on it, and compare
//! with the TPU core — the headline result of the paper in ~40 lines.
//!
//! Run with: `cargo run --example quickstart --release`

use dnn_models::zoo;
use scale_sim::CmosNpuConfig;
use sfq_cells::{BiasScheme, CellLibrary};
use sfq_estimator::estimate;
use sfq_npu_sim::{simulate_network, SimConfig};

fn main() {
    // 1. Architecture-level estimation: frequency, power, area.
    let lib = CellLibrary::aist_10um();
    let cfg = SimConfig::paper_supernpu();
    let est = estimate(&cfg.npu, &lib);
    println!("SuperNPU ({}):", lib.bias());
    println!("  clock      : {:.1} GHz", est.frequency_ghz);
    println!("  peak       : {:.0} TMAC/s", est.peak_tmacs);
    println!("  static     : {:.0} W (RSFQ biasing)", est.static_w);
    println!(
        "  area       : {:.0} mm^2 scaled to 28 nm",
        est.area_mm2_28nm
    );
    println!("  junctions  : {:.2} billion", est.jj_total as f64 / 1e9);

    // 2. Cycle simulation of ResNet-50 inference.
    let resnet = zoo::resnet50();
    let sfq = simulate_network(&cfg, &resnet);
    println!("\nResNet-50 on SuperNPU (batch {}):", sfq.batch);
    println!("  throughput : {:.1} TMAC/s", sfq.effective_tmacs());
    println!("  images/s   : {:.0}", sfq.images_per_s());
    println!("  PE util    : {:.1}%", 100.0 * sfq.pe_utilization());

    // 3. The conventional comparison point.
    let tpu = scale_sim::simulate_network(&CmosNpuConfig::tpu_core(), &resnet);
    println!("\nResNet-50 on the TPU core (batch {}):", tpu.batch);
    println!("  throughput : {:.1} TMAC/s", tpu.effective_tmacs());
    println!(
        "\n=> SuperNPU speed-up: {:.1}x (paper: ~22x on ResNet-50)",
        sfq.effective_tmacs() / tpu.effective_tmacs()
    );

    // 4. And the power story under ERSFQ biasing with free cooling.
    let ersfq = cfg.with_bias(BiasScheme::Ersfq);
    let s = simulate_network(&ersfq, &resnet);
    println!(
        "=> ERSFQ chip power: {:.2} W -> {:.0}x the TPU's perf/W with free cooling",
        s.total_power_w(),
        (s.effective_tmacs() / s.total_power_w()) / (tpu.effective_tmacs() / 40.0)
    );
}
