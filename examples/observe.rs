//! Observability tour: run a metrics-enabled characterization +
//! design-space sweep and show where the time goes.
//!
//! Run with: `cargo run --example observe --release`
//!
//! The same data is available from any binary in the workspace by
//! setting `SUPERNPU_METRICS=1` (and `SUPERNPU_LOG=info` for the
//! progress log); this example just flips the switch in code so it
//! works out of the box.

use std::path::Path;

fn main() {
    // Everything below is a no-op overhead-wise until this call (or
    // `SUPERNPU_METRICS=1` in the environment) turns the registry on.
    sfq_obs::set_enabled(true);
    sfq_obs::set_log_level(Some(sfq_obs::Level::Info));
    // Exercise the worker pool even on a single-core machine — par_map
    // output is bit-identical regardless of thread count, and a pool
    // of at least 2 populates the par.* metrics shown below.
    sfq_par::set_threads(sfq_par::threads().max(2));

    // 1. Characterize the cell library from transient simulations.
    //    This exercises the jjsim solver counters
    //    (jjsim.solver.newton_iters, .lu_factor, .run_ms, ...) and the
    //    chars memo cache (chars.measure.cache_hit / cache_miss).
    let lib = sfq_chars::characterize().expect("transient testbenches converge");
    let (hits, misses) = sfq_chars::measure_cache_stats();
    println!(
        "characterized a {} cell library ({hits} cache hits / {misses} misses)",
        lib.bias()
    );

    // 2. A full design-space sweep on the worker pool. This drives the
    //    estimator cache (estimator.estimate.*), the thread pool
    //    (par.tasks, par.task_ms, par.worker.N.tasks), the cycle
    //    simulator (npusim.layer.*, npusim.network.sim_ms) and the
    //    sweep spans (explore.fig21.ms, explore.fig21.point_ms).
    let points = supernpu::explore::fig21_resource_sweep();
    println!("\nfig21 resource sweep: {} points", points.len());

    // 3. Render the whole registry as a table...
    print!(
        "\n{}",
        supernpu::report::metrics_table().expect("metrics are enabled")
    );

    // 4. ...and export the same snapshot as machine-readable JSON
    //    (what the experiment binaries drop next to their results).
    match supernpu::export::write_metrics_json(Path::new(".")) {
        Ok(Some(path)) => println!("\nsnapshot written to {}", path.display()),
        Ok(None) => unreachable!("metrics are enabled"),
        Err(e) => eprintln!("\ncould not write metrics.json: {e}"),
    }
}
