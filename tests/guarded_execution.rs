//! Cross-crate tests of the execution-guard layer (the robustness
//! PR): deadlines and cooperative cancellation thread from the sweep
//! runner through `sfq-par` dispatch into the transient solver and
//! come back as typed outcomes, never as hangs or silent losses; the
//! chaos harness is deterministic and cannot lose a point; an
//! interrupted sweep leaves the memo caches consistent and resumes
//! bit-identically from its atomic checkpoint.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use jjsim::stdlib::{jtl_chain, AndParams, DffParams, JtlParams};
use jjsim::{SimError, SimOptions, Solver};
use proptest::prelude::*;
use sfq_chars::{GuardPolicy, MeasureSource};
use sfq_guard::{chaos, CancelToken, RunBudget};
use sfq_par::{par_map_deadline, TaskOutcome};
use supernpu::resilient::{run_resilient, sweep_identity, ResilientOpts};

/// Serialize tests that flip process-global state (the chaos harness,
/// the panic hook, the worker pool).
static GLOBAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn items(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

// ------------------------------------------------- par dispatch

/// With an unlimited budget, `par_map_deadline` is `par_map` with
/// labels: every task completes and the values match the plain path.
#[test]
fn unlimited_deadline_dispatch_matches_par_map() {
    let xs = items(64);
    let plain = sfq_par::par_map(&xs, |&x| x * x);
    let guarded = par_map_deadline(&xs, &RunBudget::unlimited(), |&x| x * x);
    assert_eq!(guarded.len(), plain.len());
    for (g, p) in guarded.into_iter().zip(plain) {
        match g {
            TaskOutcome::Completed(v) => assert_eq!(v, p),
            other => panic!("expected Completed, got {other:?}"),
        }
    }
}

/// A pre-cancelled token cancels every task before it runs; an
/// already-expired deadline times every task out. Both are typed
/// outcomes, not panics or hangs.
#[test]
fn cancel_and_deadline_surface_as_typed_outcomes() {
    let xs = items(16);
    let token = CancelToken::new();
    token.cancel();
    let budget = RunBudget::unlimited().with_cancel(token);
    for out in par_map_deadline(&xs, &budget, |&x| x) {
        assert!(matches!(out, TaskOutcome::Cancelled), "{out:?}");
    }

    let expired = RunBudget::unlimited().with_deadline(Duration::ZERO);
    for out in par_map_deadline(&xs, &expired, |&x| x) {
        assert!(matches!(out, TaskOutcome::TimedOut), "{out:?}");
    }
}

/// A panicking task is contained as `Panicked` with its message;
/// neighbours still complete.
#[test]
fn panics_are_contained_per_task() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let xs = items(8);
    let outs = par_map_deadline(&xs, &RunBudget::unlimited(), |&x| {
        assert!(x != 3, "task three exploded");
        x
    });
    std::panic::set_hook(hook);
    for (i, out) in outs.into_iter().enumerate() {
        if i == 3 {
            match out {
                TaskOutcome::Panicked(p) => {
                    assert!(p.message.contains("task three exploded"), "{}", p.message);
                }
                other => panic!("expected Panicked, got {other:?}"),
            }
        } else {
            assert!(matches!(out, TaskOutcome::Completed(_)), "{out:?}");
        }
    }
}

// ------------------------------------------------- solver budget

/// The transient solver observes the ambient budget and surfaces the
/// stop as a typed [`SimError`], not a hang: a tiny step budget trips
/// `BudgetExceeded`, a cancelled token trips `Cancelled`.
#[test]
fn solver_surfaces_budget_stops_as_typed_errors() {
    let (circuit, _probes) = jtl_chain(4, &JtlParams::default());
    let solver = Solver::new(circuit, SimOptions::adaptive()).expect("valid circuit");

    let strict = RunBudget::unlimited().with_max_steps(3);
    let err = sfq_guard::scope(&strict, || solver.try_run(100e-12)).unwrap_err();
    assert!(err.is_budget(), "{err}");

    let token = CancelToken::new();
    token.cancel();
    let cancelled = RunBudget::unlimited().with_cancel(token);
    let err = sfq_guard::scope(&cancelled, || solver.try_run(100e-12)).unwrap_err();
    assert!(err.is_cancelled(), "{err}");
    assert!(matches!(err, SimError::Cancelled { .. }));

    // And without any ambient budget the same run completes — the
    // guard path costs nothing when absent.
    let (circuit, _probes) = jtl_chain(4, &JtlParams::default());
    let solver = Solver::new(circuit, SimOptions::adaptive()).expect("valid circuit");
    solver.try_run(100e-12).expect("unguarded run converges");
}

// ------------------------------------------------- chars ladder

/// `measure_resilient` with a liberal policy matches the plain
/// measurement bit-for-bit on the golden path (no degradation).
#[test]
fn resilient_measurement_matches_plain_on_golden_path() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    sfq_chars::clear_measure_cache();
    let plain = sfq_chars::measure().expect("plain measurement converges");
    sfq_chars::clear_measure_cache();
    let guarded = sfq_chars::measure_resilient(
        &JtlParams::default(),
        &DffParams::default(),
        &AndParams::default(),
        &GuardPolicy::default(),
    )
    .expect("guarded measurement converges");
    assert_eq!(guarded.source, MeasureSource::Transient);
    assert!(!guarded.is_degraded());
    assert_eq!(guarded.value, plain, "guards must not perturb the result");
}

/// A cancelled policy propagates `Cancelled` instead of degrading to
/// the reference numbers: cancellation means *stop*, not *fake it*.
#[test]
fn cancelled_measurement_propagates_instead_of_degrading() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    sfq_chars::clear_measure_cache();
    let token = CancelToken::new();
    token.cancel();
    let policy = GuardPolicy::default().with_cancel(token);
    let err = sfq_chars::measure_resilient(
        &JtlParams::default(),
        &DffParams::default(),
        &AndParams::default(),
        &policy,
    )
    .unwrap_err();
    assert!(err.is_cancelled(), "{err}");
}

/// An impossible per-attempt deadline exhausts the ladder and lands
/// on the reference fallback — degraded, labeled, never an error and
/// never a loss.
#[test]
fn exhausted_ladder_degrades_to_reference_measurements() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    sfq_chars::clear_measure_cache();
    let policy = GuardPolicy {
        attempt_timeout: Some(Duration::ZERO),
        retries: 1,
        cancel: None,
    };
    let guarded = sfq_chars::measure_resilient(
        &JtlParams::default(),
        &DffParams::default(),
        &AndParams::default(),
        &policy,
    )
    .expect("ladder bottoms out at the reference, not an error");
    assert_eq!(guarded.source, MeasureSource::Fallback);
    assert!(guarded.is_degraded());
    let reference = sfq_chars::reference_measurements();
    assert_eq!(guarded.value, reference);
    // The failed attempts must not have poisoned the memo cache: a
    // plain measurement afterwards still reports the transient truth.
    sfq_chars::clear_measure_cache();
    let plain = sfq_chars::measure().expect("plain measurement converges");
    assert_ne!(plain, reference, "transient and reference must differ");
}

// ------------------------------------------------- chaos harness

/// The chaos decision function is a pure function of (seed, task,
/// attempt): the same seed replays the same injection plan, and some
/// tasks are actually injected at the documented ~3/16 rate.
#[test]
fn chaos_plan_is_deterministic_and_nonempty() {
    let plan: Vec<_> = (0..64).map(|t| chaos::decide_seeded(2024, t, 0)).collect();
    let replay: Vec<_> = (0..64).map(|t| chaos::decide_seeded(2024, t, 0)).collect();
    assert_eq!(plan, replay);
    let injected = plan.iter().filter(|d| d.is_some()).count();
    assert!(injected > 0, "seed 2024 injects nothing in 64 draws");
    assert!(injected < 32, "injection rate implausibly high");
    // A different seed draws a different plan.
    let other: Vec<_> = (0..64).map(|t| chaos::decide_seeded(77, t, 0)).collect();
    assert_ne!(plan, other);
}

/// Under chaos injection, a resilient sweep with a fallback loses
/// nothing: every point terminates `Completed` or `Degraded` with a
/// value, and the values of surviving transient points match an
/// uninjected run.
#[test]
fn chaos_sweep_loses_no_points() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let eval = |i: usize| (i as f64).sqrt();
    let eval = &eval;
    let opts = ResilientOpts::unguarded();
    let clean =
        run_resilient("chaos_t", 1, 32, &opts, eval, Some(eval)).expect("no checkpoint, no error");

    chaos::set_chaos(Some(2024));
    let chaotic = run_resilient("chaos_t", 1, 32, &opts, eval, Some(eval));
    chaos::set_chaos(None);
    std::panic::set_hook(hook);

    let chaotic = chaotic.expect("no checkpoint, no error");
    assert_eq!(chaotic.lost(), 0, "chaos must not lose a point");
    let (completed, degraded, timed_out, cancelled, failed) = chaotic.state_counts();
    assert_eq!(timed_out + cancelled + failed, 0);
    assert_eq!(completed + degraded, 32);
    // The fallback is the same pure function here, so the values are
    // identical to the clean run regardless of which rung ran.
    assert_eq!(chaotic.values(), clean.values());
}

// ------------------------------------------------- checkpoint/resume

fn ckpt_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("supernpu_guarded_execution_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Kill a sweep mid-flight with a cancel token, then resume: the
/// resumed run restores the durable prefix from the checkpoint and
/// reproduces the uninterrupted run bit-for-bit (JSON round-trip
/// included, which is what the bench gate compares).
#[test]
fn killed_sweep_resumes_bit_identically() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = ckpt_dir("resume");
    let path = dir.join("sweep.json");
    let n = 24usize;
    let ident = sweep_identity(&[n as u64, 7]);

    let eval = |i: usize| (i as f64) * 1.5 + 0.25;
    let eval = &eval;
    let reference = run_resilient(
        "kill_t",
        ident,
        n,
        &ResilientOpts::unguarded(),
        eval,
        Some(eval),
    )
    .expect("reference run");
    let reference_vals = reference.values();

    // Killed run: the eval itself fires the cancel token after 5
    // evaluations — a deterministic mid-sweep kill.
    let token = CancelToken::new();
    let calls = AtomicUsize::new(0);
    let killing_eval = |i: usize| {
        if calls.fetch_add(1, Ordering::SeqCst) + 1 >= 5 {
            token.cancel();
        }
        eval(i)
    };
    let killed_opts = ResilientOpts::unguarded()
        .with_budget(RunBudget::unlimited().with_cancel(token.clone()))
        .with_checkpoint(path.clone(), 4, false);
    let killed = run_resilient(
        "kill_t",
        ident,
        n,
        &killed_opts,
        killing_eval,
        None::<fn(usize) -> f64>,
    )
    .expect("killed run still reports");
    let (done, _, _, cancelled, _) = killed.state_counts();
    assert!(cancelled > 0, "the kill must actually cancel something");
    assert!(done < n, "the kill must land mid-sweep");
    assert!(path.exists(), "the killed run left a checkpoint");

    // Resume with clean options: restored prefix + fresh tail ==
    // reference, byte-for-byte through the JSON encoding.
    let resume_opts = ResilientOpts::unguarded().with_checkpoint(path.clone(), 4, true);
    let resumed =
        run_resilient("kill_t", ident, n, &resume_opts, eval, Some(eval)).expect("resumed run");
    assert!(
        resumed.restored > 0,
        "resume must restore the durable prefix"
    );
    let resumed_vals = resumed.values();
    assert_eq!(resumed_vals, reference_vals);
    assert_eq!(
        serde_json::to_string(&resumed_vals).expect("serialize"),
        serde_json::to_string(&reference_vals).expect("serialize"),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkpoint from a differently-parameterized sweep is rejected
/// with a typed mismatch instead of being silently grafted on.
#[test]
fn foreign_checkpoint_is_rejected() {
    let dir = ckpt_dir("mismatch");
    let path = dir.join("sweep.json");
    let eval = |i: usize| i as f64;
    let eval = &eval;
    let opts = ResilientOpts::unguarded().with_checkpoint(path.clone(), 2, false);
    run_resilient("mismatch_t", 1, 6, &opts, eval, Some(eval)).expect("first run");

    let resume = ResilientOpts::unguarded().with_checkpoint(path.clone(), 2, true);
    // Different identity → rejected.
    let err = run_resilient("mismatch_t", 2, 6, &resume, eval, Some(eval)).unwrap_err();
    assert!(err.to_string().contains("different sweep"), "{err}");
    // Different name → rejected.
    let err = run_resilient("other_t", 1, 6, &resume, eval, Some(eval)).unwrap_err();
    assert!(err.to_string().contains("different sweep"), "{err}");
    // Same everything → restored in full.
    let again = run_resilient("mismatch_t", 1, 6, &resume, eval, Some(eval)).expect("resume");
    assert_eq!(again.restored, 6);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The real fig20 sweep under the resilient runner: unguarded, it
/// reproduces the plain sweep exactly; killed-and-resumed, it
/// reproduces it bit-identically through the checkpoint.
#[test]
fn fig20_resilient_matches_plain_and_survives_kill() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    sfq_estimator::clear_estimate_cache();
    sfq_chars::clear_measure_cache();
    let plain = supernpu::explore::fig20_buffer_sweep();

    sfq_estimator::clear_estimate_cache();
    sfq_chars::clear_measure_cache();
    let guarded = supernpu::explore::fig20_buffer_sweep_resilient(&ResilientOpts::unguarded())
        .expect("resilient fig20");
    assert_eq!(guarded.lost(), 0);
    assert_eq!(guarded.clone().values(), plain);

    // Kill after the first chunk via a pre-cancelled-at-2 token, then
    // resume and require identity.
    let dir = ckpt_dir("fig20");
    let path = dir.join("fig20.json");
    let token = CancelToken::new();
    let killed_opts = ResilientOpts::unguarded()
        .with_budget(RunBudget::unlimited().with_cancel(token.clone()))
        .with_checkpoint(path.clone(), 2, false);
    // The sweep owns its eval, so the kill comes from outside: a
    // watcher thread cancels as soon as the first checkpoint chunk
    // lands on disk (or after a generous timeout, so the test cannot
    // hang if checkpointing broke).
    let watcher = {
        let token = token.clone();
        let path = path.clone();
        std::thread::spawn(move || {
            for _ in 0..2000 {
                if path.exists() {
                    token.cancel();
                    return;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            token.cancel();
        })
    };
    sfq_estimator::clear_estimate_cache();
    sfq_chars::clear_measure_cache();
    let killed = supernpu::explore::fig20_buffer_sweep_resilient(&killed_opts)
        .expect("killed fig20 still reports");
    watcher.join().expect("watcher thread");
    assert_eq!(killed.lost(), 0, "cancelled points are not losses");

    let resume_opts = ResilientOpts::unguarded().with_checkpoint(path.clone(), 2, true);
    sfq_estimator::clear_estimate_cache();
    sfq_chars::clear_measure_cache();
    let resumed =
        supernpu::explore::fig20_buffer_sweep_resilient(&resume_opts).expect("resumed fig20");
    assert_eq!(
        serde_json::to_string(&resumed.values()).expect("serialize"),
        serde_json::to_string(&plain).expect("serialize"),
        "resumed fig20 must reproduce the plain sweep bit-for-bit"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------- S3 proptests

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cancelling a sweep after `k` evaluations never corrupts later
    /// runs: a fresh run from the same seed state is bit-identical to
    /// an uninterrupted baseline, whatever `k` was.
    #[test]
    fn cancellation_point_never_perturbs_rerun(k in 1usize..20, n in 8usize..24) {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        let eval = |i: usize| ((i as f64) + 0.5).ln();
        let eval = &eval;
        let opts = ResilientOpts::unguarded();
        let baseline = run_resilient("prop_t", 3, n, &opts, eval, Some(eval))
            .expect("baseline");

        let token = CancelToken::new();
        let calls = AtomicUsize::new(0);
        let killing_eval = |i: usize| {
            if calls.fetch_add(1, Ordering::SeqCst) + 1 >= k {
                token.cancel();
            }
            eval(i)
        };
        let killed_opts = ResilientOpts::unguarded()
            .with_budget(RunBudget::unlimited().with_cancel(token.clone()));
        let killed = run_resilient(
            "prop_t", 3, n, &killed_opts, killing_eval, None::<fn(usize) -> f64>,
        )
        .expect("killed run reports");
        prop_assert_eq!(killed.lost(), 0);

        // The interrupted run must not leak state into a fresh one.
        let again = run_resilient("prop_t", 3, n, &opts, eval, Some(eval))
            .expect("rerun");
        prop_assert_eq!(again.values(), baseline.clone().values());
    }

    /// Cancelling a guarded measurement mid-ladder leaves the chars
    /// memo cache consistent: the next plain measurement from the
    /// same parameters is bit-identical to one computed on a clean
    /// cache.
    #[test]
    fn cancelled_measure_leaves_cache_consistent(retries in 0u32..3) {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        sfq_chars::clear_measure_cache();
        let clean = sfq_chars::measure().expect("clean measurement");

        sfq_chars::clear_measure_cache();
        let token = CancelToken::new();
        token.cancel();
        let policy = GuardPolicy {
            attempt_timeout: Some(Duration::from_millis(1)),
            retries,
            cancel: Some(token),
        };
        let err = sfq_chars::measure_resilient(
            &JtlParams::default(),
            &DffParams::default(),
            &AndParams::default(),
            &policy,
        )
        .unwrap_err();
        prop_assert!(err.is_cancelled());

        // Without clearing: whatever the cancelled attempt cached (at
        // most a completed nominal entry) must agree with the clean
        // measurement.
        let after = sfq_chars::measure().expect("measurement after cancel");
        prop_assert_eq!(after, clean);
    }
}
