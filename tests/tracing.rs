//! Workspace-level tests of the `sfq_obs::trace` event-tracing layer:
//! the disabled path records nothing, concurrent recording into small
//! rings loses nothing silently (drained + dropped is exact, no torn
//! events), exported Chrome trace JSON parses and round-trips with
//! every required field, the npusim cycle export is bit-identical
//! across worker-pool sizes, and enabling tracing does not change a
//! solver result by a single bit.
//!
//! The sink registry is process-global, so everything runs inside one
//! test function in a fixed order (same pattern as the observability
//! tests).

use serde_json::Value;
use sfq_obs::trace;

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.as_object()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

#[test]
fn tracing_end_to_end() {
    // --- 1. Disabled path records nothing ----------------------------
    trace::set_trace(None);
    trace::clear();
    assert!(!trace::enabled());
    trace::complete("test", "never", 0.0, 1.0);
    trace::instant("test", "never");
    {
        let _s = trace::span("test", "never");
    }
    assert_eq!(
        trace::sinks_registered(),
        0,
        "disabled helpers must not register a sink"
    );
    let mut ct = trace::ChromeTrace::new();
    trace::drain_into(&mut ct);
    assert!(ct.is_empty(), "disabled helpers must record nothing");

    // --- 2. Tracing on/off does not change solver results ------------
    let (ckt, stages) = jjsim::stdlib::jtl_chain(4, &jjsim::stdlib::JtlParams::default());
    let solver = jjsim::Solver::new(ckt, jjsim::SimOptions::default()).expect("valid circuit");
    let off = solver.run(250e-12);
    trace::set_trace(Some("unused-trace-path.json"));
    trace::set_detail(true);
    let on = solver.run(250e-12);
    for &jj in &stages {
        assert_eq!(
            off.pulse_times(jj),
            on.pulse_times(jj),
            "tracing changed solver output"
        );
    }
    trace::set_detail(false);
    let mut solver_events = trace::ChromeTrace::new();
    trace::drain_into(&mut solver_events);
    let json = solver_events.to_json();
    assert!(json.contains("solver.run"), "missing solver.run slice");
    assert!(json.contains("accept"), "detail instants missing");

    // --- 3. Concurrent stress into tiny rings: exact accounting ------
    trace::clear();
    trace::set_ring_capacity(64);
    const THREADS: usize = 4;
    const PER_THREAD: usize = 1000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    trace::complete("stress", &format!("t{t}.e{i}"), i as f64, 1.0);
                }
            });
        }
    });
    let mut ct = trace::ChromeTrace::new();
    trace::drain_into(&mut ct);
    let drained = ct.len();
    let dropped = trace::events_dropped();
    assert_eq!(
        drained as u64 + dropped,
        (THREADS * PER_THREAD) as u64,
        "drained {drained} + dropped {dropped} must equal every event recorded"
    );
    assert_eq!(
        drained,
        THREADS * 64,
        "each ring keeps exactly its capacity"
    );
    // No torn events: every drained event is fully formed.
    let file: Value = serde_json::from_str(&ct.to_json()).expect("stress trace parses");
    let events = get(&file, "traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    for e in events {
        let ph = get(e, "ph").and_then(Value::as_str).expect("ph present");
        assert!(matches!(ph, "X" | "i" | "C" | "M"), "unknown phase {ph}");
        for field in ["ts", "pid", "tid", "name", "cat", "dur", "args"] {
            assert!(get(e, field).is_some(), "event lacks field '{field}'");
        }
        if ph == "X" && get(e, "cat").and_then(Value::as_str) == Some("stress") {
            let name = get(e, "name").and_then(Value::as_str).expect("name");
            assert!(
                name.starts_with('t') && name.contains(".e"),
                "torn name {name}"
            );
        }
    }
    // The drop counter is also surfaced as an always-on metric.
    assert_eq!(sfq_obs::counter("obs.trace.events_dropped").get(), dropped);

    // --- 4. Typed round-trip through serde ---------------------------
    let back: trace::TraceFile = serde_json::from_str(&ct.to_json()).expect("typed parse");
    assert_eq!(back, ct.to_file(), "TraceFile does not round-trip");

    // --- 5. npusim cycle export is thread-count invariant ------------
    trace::set_trace(None);
    trace::clear();
    let cfg = sfq_npu_sim::SimConfig::paper_supernpu();
    let net = dnn_models::zoo::alexnet();
    sfq_par::set_threads(1);
    let serial = supernpu::export::cycle_trace(&cfg, &net, 4).to_json();
    sfq_par::set_threads(4);
    let parallel = supernpu::export::cycle_trace(&cfg, &net, 4).to_json();
    assert_eq!(serial, parallel, "cycle export depends on thread count");
    assert!(serial.contains("pe array") && serial.contains("dram_bytes"));
}
