//! The parallel sweep engine must be a pure speed-up: running a sweep
//! across worker threads has to produce *bit-identical* output to the
//! serial run. [`sfq_par::par_map`] guarantees this by construction
//! (results are placed by item index, never by completion order);
//! this test checks the property end-to-end through real sweeps.
//!
//! One `#[test]` on purpose: [`sfq_par::set_threads`] is process-wide
//! state, so the serial/parallel comparison must not race with another
//! test toggling it.

use supernpu::explore::{fig20_buffer_sweep, fig21_resource_sweep, fig22_register_sweep};

#[test]
fn sweeps_are_bit_identical_serial_vs_parallel() {
    // Serial reference.
    sfq_par::set_threads(1);
    let fig20_serial = serde_json::to_string(&fig20_buffer_sweep()).unwrap();
    let fig21_serial = serde_json::to_string(&fig21_resource_sweep()).unwrap();
    let fig22_serial = serde_json::to_string(&fig22_register_sweep()).unwrap();

    // Parallel run (oversubscribes on small machines — that only makes
    // completion order *more* scrambled, which is the point).
    sfq_par::set_threads(4);
    let fig20_par = serde_json::to_string(&fig20_buffer_sweep()).unwrap();
    let fig21_par = serde_json::to_string(&fig21_resource_sweep()).unwrap();
    let fig22_par = serde_json::to_string(&fig22_register_sweep()).unwrap();

    // JSON strings carry full f64 round-trip precision, so string
    // equality here is bit-for-bit equality of every number.
    assert_eq!(fig20_serial, fig20_par, "fig20 parallel output diverged");
    assert_eq!(fig21_serial, fig21_par, "fig21 parallel output diverged");
    assert_eq!(fig22_serial, fig22_par, "fig22 parallel output diverged");
}
