//! Property tests of the granularity-aware scheduler in `sfq-par`:
//! whatever the chunk size, thread count, or key function, `par_map`
//! must return exactly what a serial loop returns — bit-for-bit — and
//! `par_map_catch` must poison exactly the panicking items. The
//! scheduler is free to merge tasks into chunks, steal across
//! workers, or fall back to serial; none of that may be observable in
//! the output.

use proptest::prelude::*;
use sfq_par::{par_map, par_map_catch, par_map_keyed, set_chunk, set_threads};

/// Serialize the tests: they all reconfigure the process-global
/// worker pool and chunk override (and one swaps the panic hook).
static GLOBAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Restores the pool and chunk configuration even when a
/// `prop_assert!` unwinds mid-case.
struct PoolReset;
impl Drop for PoolReset {
    fn drop(&mut self) {
        sfq_par::clear_threads();
        set_chunk(0);
    }
}

/// A deliberately non-associative float chain: any reordering or
/// re-bracketing of the per-item work would move bits.
fn crunch(x: u64) -> f64 {
    let mut acc = x as f64 + 0.1;
    for i in 1..40u64 {
        acc = acc.mul_add(1.000_000_3, (x.wrapping_mul(i) % 1021) as f64 * 1e-7);
        acc = acc.sin() + acc;
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bit-identity under every scheduling configuration: thread
    /// counts beyond the physical cores, pinned chunk sizes from 1 to
    /// far-larger-than-the-input, and the auto chunker (chunk = 0).
    #[test]
    fn par_map_is_bit_identical_for_any_chunking(
        items in prop::collection::vec(any::<u64>(), 0..300),
        threads in 1usize..=8,
        chunk in 0usize..=64,
    ) {
        let _guard = GLOBAL.lock().unwrap();
        let _reset = PoolReset;
        let expected: Vec<u64> = items.iter().map(|&x| crunch(x).to_bits()).collect();

        set_threads(threads);
        set_chunk(chunk);
        let got: Vec<u64> = par_map(&items, |&x| crunch(x).to_bits());
        prop_assert_eq!(&got, &expected);

        // Keyed scheduling only changes which worker runs a chunk,
        // never the reassembled output — including the degenerate
        // single-key grid where every task lands on one queue.
        let keyed = par_map_keyed(&items, |&x| x % 3, |&x| crunch(x).to_bits());
        prop_assert_eq!(&keyed, &expected);
        let one_key = par_map_keyed(&items, |_| 7, |&x| crunch(x).to_bits());
        prop_assert_eq!(&one_key, &expected);
    }

    /// Panic isolation composes with chunking: a chunk is a scheduling
    /// unit, not a failure domain. Exactly the injected items come
    /// back as `Err`, carrying their own index, and every other item
    /// in the same chunk still produces its serial value.
    #[test]
    fn par_map_catch_poisons_only_the_panicking_tasks(
        n in 0usize..200,
        modulus in 2u64..=9,
        residue in 0u64..9,
        threads in 1usize..=6,
        chunk in 0usize..=32,
    ) {
        let _guard = GLOBAL.lock().unwrap();
        let _reset = PoolReset;
        // Panics unwind through the hook before par_map_catch traps
        // them; a quiet hook keeps the injected ones off stderr.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));

        set_threads(threads);
        set_chunk(chunk);
        let items: Vec<u64> = (0..n as u64).collect();
        let out = par_map_catch(&items, |&x| {
            if x % modulus == residue {
                panic!("injected {x}");
            }
            crunch(x).to_bits()
        });

        std::panic::set_hook(prev_hook);

        prop_assert_eq!(out.len(), n);
        for (i, slot) in out.iter().enumerate() {
            let x = i as u64;
            if x % modulus == residue {
                let err = slot.as_ref().expect_err("injected panic must surface");
                prop_assert_eq!(err.index, i);
                prop_assert_eq!(&err.message, &format!("injected {x}"));
            } else {
                prop_assert_eq!(slot.as_ref().ok().copied(), Some(crunch(x).to_bits()));
            }
        }
    }
}
