//! Workspace-level tests of the `sfq-obs` metrics layer: counters and
//! histograms stay accurate under `sfq_par` concurrency, snapshots of
//! identical workloads are identical, the disabled path records
//! nothing, and — the property the whole design hangs on — enabling
//! metrics does not change a sweep's output by a single bit.
//!
//! The registry is process-global, so everything runs inside one test
//! function in a fixed order (same pattern as the `sfq-par` tests).

use supernpu::explore::fig20_buffer_sweep;

/// A fixed, fully deterministic workload: only counters and
/// integer-valued samples, no clock reads.
fn fixed_workload() {
    for i in 0..10u64 {
        sfq_obs::add("obs_test.fixed.events", i);
        sfq_obs::observe("obs_test.fixed.sizes", (1 << (i % 7)) as f64);
    }
    sfq_obs::gauge_set("obs_test.fixed.level", 42.0);
}

#[test]
fn observability_end_to_end() {
    // --- 1. Accuracy under par_map concurrency -----------------------
    sfq_obs::set_enabled(true);
    sfq_obs::reset();
    sfq_par::set_threads(4);
    let items: Vec<u64> = (1..=64).collect();
    let doubled = sfq_par::par_map(&items, |&i| {
        sfq_obs::add("obs_test.par.events", i);
        // Integer-valued samples: the histogram's CAS-summed f64 total
        // is exact, so the assertion below is an equality.
        sfq_obs::observe("obs_test.par.sample", i as f64);
        i * 2
    });
    assert_eq!(doubled.len(), 64);
    let expected: u64 = items.iter().sum(); // 2080
    assert_eq!(sfq_obs::counter("obs_test.par.events").get(), expected);
    let h = sfq_obs::histogram("obs_test.par.sample");
    assert_eq!(h.count(), 64);
    assert_eq!(h.sum(), expected as f64);
    assert_eq!(h.min(), 1.0);
    assert_eq!(h.max(), 64.0);
    // The pool instrumented itself too: every item became a task.
    let snap = sfq_obs::snapshot();
    assert!(
        snap.counter("par.tasks").unwrap_or(0) >= 64,
        "par.tasks missing"
    );
    assert!(snap.histogram("par.task_ms").is_some_and(|t| t.count >= 64));

    // --- 2. Snapshot determinism after a fixed workload --------------
    sfq_obs::reset();
    fixed_workload();
    let first = sfq_obs::snapshot();
    sfq_obs::reset();
    fixed_workload();
    let second = sfq_obs::snapshot();
    assert_eq!(
        first, second,
        "identical workloads must snapshot identically"
    );
    assert_eq!(first.counter("obs_test.fixed.events"), Some(45));
    // And the snapshot survives a JSON round-trip through the export
    // path used for metrics.json.
    let json = supernpu::export::metrics_json().expect("metrics enabled");
    let back: sfq_obs::MetricsReport = serde_json::from_str(&json).expect("round-trip");
    assert_eq!(back, second);

    // --- 3. Disabled path records nothing ----------------------------
    sfq_obs::set_enabled(false);
    let before = sfq_obs::snapshot();
    fixed_workload();
    let _ = sfq_par::par_map(&items, |&i| {
        sfq_obs::inc("obs_test.disabled.events");
        i
    });
    {
        let _span = sfq_obs::span("obs_test.disabled.span_ms");
    }
    let after = sfq_obs::snapshot();
    assert_eq!(
        before, after,
        "disabled metrics must not touch the registry"
    );
    assert_eq!(after.counter("obs_test.disabled.events"), None);

    // --- 4. Metrics cannot change results: fig20 bit-identical -------
    let off = serde_json::to_string(&fig20_buffer_sweep()).unwrap();
    sfq_obs::set_enabled(true);
    sfq_obs::reset();
    let on = serde_json::to_string(&fig20_buffer_sweep()).unwrap();
    assert_eq!(off, on, "enabling metrics changed the sweep output");
    // ...while actually having recorded the sweep.
    let snap = sfq_obs::snapshot();
    assert!(snap
        .histogram("explore.fig20.point_ms")
        .is_some_and(|h| h.count > 0));
    sfq_obs::set_enabled(false);

    // --- 5. Panic hook flushes sinks before unwinding ----------------
    // A panicking run must still land its SUPERNPU_METRICS_JSON
    // snapshot on disk (the hook fires before unwinding, so this holds
    // even under panic=abort, which a dropped DumpOnExit guard does
    // not).
    let dir = std::env::temp_dir().join(format!("obs_panic_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let json_path = dir.join("metrics.json");
    std::env::set_var("SUPERNPU_METRICS_JSON", &json_path);
    sfq_obs::set_enabled(true);
    sfq_obs::install_panic_flush();
    let unwound = std::panic::catch_unwind(|| {
        sfq_obs::inc("obs_test.panic.events");
        panic!("deliberate test panic");
    });
    assert!(unwound.is_err());
    let written = std::fs::read_to_string(&json_path).expect("panic hook wrote metrics json");
    let report: sfq_obs::MetricsReport = serde_json::from_str(&written).expect("parses");
    assert_eq!(report.counter("obs_test.panic.events"), Some(1));
    std::env::remove_var("SUPERNPU_METRICS_JSON");
    std::fs::remove_dir_all(&dir).ok();
    sfq_obs::set_enabled(false);
}
