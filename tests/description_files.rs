//! The paper's simulator takes "DNN description" and "architecture
//! description" files as inputs (Fig. 10 / Fig. 14). These tests
//! exercise the same JSON-file workflow end to end.

use dnn_models::{Layer, Network};
use sfq_cells::CellLibrary;
use sfq_npu_sim::{simulate_network, SimConfig};

/// A user-authored DNN description (JSON) runs through the simulator.
#[test]
fn custom_network_from_json() {
    let net = Network::new(
        "TinyNet",
        vec![
            Layer::conv("stem", (32, 32), 3, 16, 3, 1, 1),
            Layer::conv("body", (32, 32), 16, 32, 3, 2, 1),
            Layer::fully_connected("head", 16 * 16 * 32, 10),
        ],
    );
    let json = net.to_json();
    let parsed = Network::from_json(&json).expect("round trips");
    assert_eq!(parsed, net);

    let cfg = SimConfig::paper_supernpu();
    let s = simulate_network(&cfg, &parsed);
    assert_eq!(s.total_macs(), parsed.total_macs(s.batch));
    assert!(s.effective_tmacs() > 0.0);
}

/// A malformed description is rejected, not misread.
#[test]
fn malformed_description_is_an_error() {
    assert!(Network::from_json("{\"name\": 42}").is_err());
    assert!(Network::from_json("not json at all").is_err());
}

/// An architecture description (SimConfig) round-trips through JSON,
/// including the estimator-derived physical numbers.
#[test]
fn architecture_description_roundtrip() {
    let cfg = SimConfig::paper_supernpu();
    let json = serde_json::to_string_pretty(&cfg).expect("serializes");
    let parsed: SimConfig = serde_json::from_str(&json).expect("parses");
    assert_eq!(parsed, cfg);
}

/// A cell-library characterization archives and reloads.
#[test]
fn cell_library_roundtrip() {
    let lib = CellLibrary::aist_10um();
    let parsed = CellLibrary::from_json(&lib.to_json()).expect("valid library");
    assert_eq!(parsed, lib);
}

/// Simulation results serialize for archival (the workflow every
/// experiment binary supports through serde).
#[test]
fn results_serialize() {
    let cfg = SimConfig::paper_baseline();
    let s = simulate_network(&cfg, &dnn_models::zoo::alexnet());
    let json = serde_json::to_string(&s).expect("serializes");
    assert!(json.contains("AlexNet"));
    let parsed: sfq_npu_sim::NetworkStats = serde_json::from_str(&json).expect("parses");
    assert_eq!(parsed.total_cycles(), s.total_cycles());
}
