//! Workspace-level tests of the `sfq_obs::prof` hierarchical profiler:
//! the disabled path registers nothing and records nothing, enabling
//! profiling does not change the fig. 20 sweep output by a single bit,
//! the recorded tree has the documented structure (sweep frame, detail
//! point frames, estimator cache frames, npusim layer frames, solver
//! kernel laps under an explicit wrapper frame), the collapsed-stack
//! export is well-formed, and the report round-trips through JSON.
//!
//! The profiler registry is process-global, so everything runs inside
//! one test function in a fixed order (same pattern as the tracing
//! tests).

use sfq_obs::prof;

#[test]
fn profiling_end_to_end() {
    // --- 1. Disabled path registers and records nothing ---------------
    prof::set_profile(None);
    prof::clear();
    assert!(!prof::enabled());
    {
        let _f = prof::frame("never");
        prof::count("never", 1);
        prof::record_leaf("never", 1, 100);
    }
    assert_eq!(
        prof::threads_registered(),
        0,
        "disabled helpers must not register a thread tree"
    );
    assert!(
        prof::snapshot().paths.is_empty(),
        "disabled helpers must record nothing"
    );

    // --- 2. Profiling on/off does not change sweep output -------------
    let off = serde_json::to_string(&supernpu::explore::fig20_buffer_sweep()).unwrap();
    prof::set_profile(Some("unused-profile-path.json"));
    prof::set_detail(true);
    let on = serde_json::to_string(&supernpu::explore::fig20_buffer_sweep()).unwrap();
    prof::set_detail(false);
    // JSON strings carry full f64 round-trip precision, so string
    // equality here is bit-for-bit equality of every number.
    assert_eq!(off, on, "profiling changed fig20 sweep output");

    // --- 3. The recorded tree has the documented structure -------------
    let report = prof::snapshot();
    assert!(report.threads >= 1);
    let sweep = report.path("explore.fig20").expect("sweep frame recorded");
    assert_eq!(sweep.calls, 1);
    assert!(sweep.incl_ms > 0.0);
    assert!(
        report.paths.iter().any(|p| p.path.contains("fig20 d=")),
        "detail-gated per-point frames missing: {:?}",
        report.paths.iter().map(|p| &p.path).collect::<Vec<_>>()
    );
    assert!(
        report
            .paths
            .iter()
            .any(|p| p.path.contains("estimator.estimate")),
        "estimator cache frames missing"
    );
    assert!(
        report
            .paths
            .iter()
            .any(|p| p.path.contains("npusim.layer.")),
        "per-layer-class npusim frames missing"
    );

    // --- 4. Solver kernel laps under an explicit wrapper frame ---------
    {
        let _f = prof::frame("test_cell");
        let (ckt, _) = jjsim::stdlib::jtl_chain(40, &jjsim::stdlib::JtlParams::default());
        let solver = jjsim::Solver::new(ckt, jjsim::SimOptions::adaptive()).expect("valid circuit");
        solver.try_run(200e-12).expect("transient converges");
    }
    let report = prof::snapshot();
    let run = report
        .path("test_cell;solver.run")
        .expect("solver.run frame recorded under wrapper");
    assert_eq!(run.calls, 1);
    for kernel in [
        "restamp",
        "stamp",
        "newton",
        "newton;jj_stamp_rhs",
        "newton;lu_factor",
        "newton;lu_solve",
        "lte_control",
        "commit",
    ] {
        let p = report
            .path(&format!("test_cell;solver.run;{kernel}"))
            .unwrap_or_else(|| panic!("kernel path '{kernel}' missing"));
        assert!(p.calls > 0, "kernel '{kernel}' recorded zero calls");
    }
    assert!(
        report.descendants_self_ms("test_cell;solver.run") > 0.0,
        "kernel self-times all zero"
    );
    assert!(
        run.counters
            .iter()
            .any(|c| c.name == "steps" && c.value > 0),
        "solver unit counters missing: {:?}",
        run.counters
    );

    // --- 5. Batched solver kernels attribute under solver.run ----------
    // The lane-batched path must merge its kernel times under the same
    // `solver.run` frame (inside a `solver.batch` wrapper) with the
    // scalar kernel names, so the kernel-coverage gate counts batched
    // work as ordinary solver work.
    jjsim::set_batch_width(Some(jjsim::LANES));
    {
        let _f = prof::frame("test_batch");
        let circuits: Vec<_> = [1.0, 0.97, 1.03, 1.06]
            .iter()
            .map(|s| {
                let mut p = jjsim::stdlib::JtlParams::default();
                p.ic *= s;
                jjsim::stdlib::jtl_chain(10, &p).0
            })
            .collect();
        let batch = jjsim::BatchedTransient::new(circuits, jjsim::SimOptions::adaptive())
            .expect("batch builds");
        for r in batch.try_run(100e-12) {
            r.expect("batched transient converges");
        }
    }
    jjsim::set_batch_width(None);
    let report = prof::snapshot();
    let batch_run = report
        .path("test_batch;solver.batch;solver.run")
        .expect("batched solver.run frame recorded under solver.batch");
    assert_eq!(batch_run.calls, 1);
    for kernel in ["stamp", "newton;jj_stamp_rhs", "newton;lu_factor", "commit"] {
        let p = report
            .path(&format!("test_batch;solver.batch;solver.run;{kernel}"))
            .unwrap_or_else(|| panic!("batched kernel path '{kernel}' missing"));
        assert!(p.calls > 0, "batched kernel '{kernel}' recorded zero calls");
    }
    assert!(
        report.descendants_self_ms("test_batch;solver.batch;solver.run") > 0.0,
        "batched kernel self-times all zero — coverage gate would see an opaque run"
    );
    let batch_frame = report
        .path("test_batch;solver.batch")
        .expect("solver.batch wrapper frame recorded");
    assert!(
        batch_frame
            .counters
            .iter()
            .any(|c| c.name == "batch_lanes" && c.value > 0),
        "batch lane-occupancy counters missing: {:?}",
        batch_frame.counters
    );

    // --- 6. Exports: collapsed stacks and JSON round-trip --------------
    let folded = report.to_folded();
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (path, weight) = line.rsplit_once(' ').expect("folded line has a weight");
        assert!(!path.is_empty());
        weight.parse::<u64>().expect("folded weight is an integer");
    }
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("test_cell;solver.run;newton ")),
        "folded output missing kernel stack"
    );
    let json = serde_json::to_string(&report).unwrap();
    let back: prof::ProfileReport = serde_json::from_str(&json).expect("report round-trips");
    assert_eq!(back.paths.len(), report.paths.len());
    assert!(back.top_self.len() <= prof::TOP_SELF_N);

    // Leave the process with profiling off for any later test code.
    prof::set_profile(None);
    prof::clear();
}
