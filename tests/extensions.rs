//! Integration tests of the extension surfaces: ablations,
//! sensitivity sweeps, margin analysis, netlists, traces and the
//! system power budget — everything beyond the paper's own figures.

use dnn_models::{zoo, zoo_ext};
use sfq_npu_sim::{analyze_stalls, trace_layer, AccessKind, SimConfig};
use supernpu::ablations::all_ablations;
use supernpu::sensitivity::{bandwidth_sweep, process_sweep};

/// Every §III design-choice ablation favors the paper's choice.
#[test]
fn ablations_favor_paper_choices() {
    let rows = all_ablations();
    assert_eq!(rows.len(), 5);
    for r in &rows {
        assert!(r.gain() > 1.0, "{}: {:.2}", r.choice, r.gain());
    }
    // The network choice is the largest single factor.
    let max = rows
        .iter()
        .max_by(|a, b| a.gain().partial_cmp(&b.gain()).expect("finite"))
        .expect("non-empty");
    assert!(max.choice.contains("network"), "largest: {}", max.choice);
}

/// The bandwidth sweep brackets the paper's 300 GB/s operating point.
#[test]
fn bandwidth_sweep_brackets_paper_point() {
    let pts = bandwidth_sweep();
    let at_300 = pts
        .iter()
        .find(|p| (p.bandwidth_gbs - 300.0).abs() < 1.0)
        .expect("300 GB/s point present");
    assert!(at_300.speedup() > 10.0 && at_300.speedup() < 40.0);
}

/// Process scaling hits the Kadin floor: 100 nm buys nothing over
/// 200 nm.
#[test]
fn process_floor_respected() {
    let pts = process_sweep();
    let f = |um: f64| {
        pts.iter()
            .find(|p| (p.feature_um - um).abs() < 1e-9)
            .expect("point present")
            .supernpu_tmacs
    };
    assert!((f(0.1) - f(0.2)).abs() < 1e-9);
    assert!(f(0.2) > f(1.0));
}

/// Extension workloads run end-to-end on every SFQ design point.
#[test]
fn extension_workloads_simulate() {
    for cfg in [SimConfig::paper_baseline(), SimConfig::paper_supernpu()] {
        for net in zoo_ext::all_extensions() {
            let s = sfq_npu_sim::simulate_network(&cfg, &net);
            assert_eq!(s.total_macs(), net.total_macs(s.batch), "{}", net.name());
            assert!(s.effective_tmacs() > 0.0);
        }
    }
}

/// The transformer workload is the most memory-bound of the set on
/// SuperNPU at batch 1.
#[test]
fn transformer_is_memory_bound() {
    let cfg = SimConfig::paper_supernpu();
    let r = analyze_stalls(&cfg, &zoo_ext::transformer_encoder(128), 1);
    assert_eq!(r.dominant(), "memory bandwidth");
}

/// The trace and the aggregate simulator agree on DRAM weight bytes.
#[test]
fn trace_matches_simulator_accounting() {
    let cfg = SimConfig::paper_supernpu();
    let net = zoo::googlenet();
    for layer in net.layers().iter().take(8) {
        let t = trace_layer(&cfg, layer, 3);
        assert_eq!(
            t.bytes_of(AccessKind::Dram),
            layer.weight_bytes(),
            "{}",
            layer.name()
        );
    }
}

/// Margin analysis reports healthy cells.
#[test]
fn cell_margins_are_healthy() {
    let jtl = jjsim::margins::jtl_bias_margin().expect("converges");
    assert!(jtl.critical_fraction() > 0.1);
    assert!(jtl.low < jtl.nominal && jtl.nominal < jtl.high);
}

/// A netlist deck shipped in `decks/` runs and behaves.
#[test]
fn shipped_decks_run() {
    for (deck, expected_junctions) in [("decks/jtl4.cir", 4usize), ("decks/dff.cir", 3)] {
        let text = std::fs::read_to_string(deck).expect("deck present");
        let parsed = jjsim::parse_netlist(&text).expect("deck parses");
        assert_eq!(parsed.circuit.jj_count(), expected_junctions, "{deck}");
        let out = jjsim::Solver::new(parsed.circuit.clone(), parsed.sim_options())
            .expect("solvable")
            .try_run(parsed.stop_time())
            .expect("converges");
        // Every junction fires exactly once in both decks.
        for (name, id) in &parsed.junctions {
            assert_eq!(out.pulse_count(*id), 1, "{deck}:{name}");
        }
    }
}

/// The system budget composes chip + cooling + memory sensibly for
/// the Table III ERSFQ point.
#[test]
fn system_budget_composes() {
    let budget = cryo::SystemBudget::new(2.3, &cryo::CoolingModel::holmes_4k(), 300.0);
    assert!(budget.total_w() > 900.0 && budget.total_w() < 1000.0);
    assert!(budget.cooling_fraction() > 0.9);
}

/// The characterization loop (transient physics → measured library →
/// architecture estimate) lands in the paper's regime end-to-end.
#[test]
fn characterization_loop_closes() {
    let measured = sfq_chars::characterize().expect("transients converge");
    let est = sfq_estimator::estimate(&sfq_estimator::NpuConfig::paper_supernpu(), &measured);
    assert!(
        (est.frequency_ghz - 52.6).abs() / 52.6 < 0.5,
        "measured-library SuperNPU clock {:.1} GHz",
        est.frequency_ghz
    );
}
