//! Cross-crate consistency: quantities that two different crates
//! compute independently must agree.

use dnn_models::zoo;
use sfq_cells::CellLibrary;
use sfq_estimator::estimate;
use sfq_npu_sim::{simulate_network, simulate_network_with_batch, SimConfig};
use supernpu::designs::DesignPoint;

/// The simulator must perform exactly the MACs the workload model
/// counts, for every design and workload.
#[test]
fn macs_conserved_across_designs() {
    for d in DesignPoint::SFQ_DESIGNS {
        let cfg = d.sim_config();
        for net in zoo::all() {
            let s = simulate_network(&cfg, &net);
            assert_eq!(
                s.total_macs(),
                net.total_macs(s.batch),
                "{} on {}",
                net.name(),
                cfg.npu.name
            );
        }
    }
}

/// The simulator's reported peak must match the estimator's.
#[test]
fn peak_throughput_matches_estimator() {
    let lib = CellLibrary::aist_10um();
    for d in DesignPoint::SFQ_DESIGNS {
        let cfg = d.sim_config();
        let est = estimate(&cfg.npu, &lib);
        let s = simulate_network(&cfg, &zoo::alexnet());
        assert!(
            (s.peak_tmacs - est.peak_tmacs).abs() < 1e-9,
            "{}: {} vs {}",
            cfg.npu.name,
            s.peak_tmacs,
            est.peak_tmacs
        );
    }
}

/// Effective throughput can never exceed peak.
#[test]
fn effective_never_exceeds_peak() {
    for d in DesignPoint::SFQ_DESIGNS {
        let cfg = d.sim_config();
        for net in zoo::all() {
            let s = simulate_network(&cfg, &net);
            assert!(
                s.pe_utilization() <= 1.0 + 1e-9,
                "{} on {}: util {:.3}",
                net.name(),
                cfg.npu.name,
                s.pe_utilization()
            );
        }
    }
}

/// Throughput is monotone non-decreasing in batch (prep amortizes;
/// nothing in the model should penalize larger on-chip batches).
#[test]
fn batch_monotonicity() {
    let cfg = SimConfig::paper_supernpu();
    let net = zoo::googlenet();
    let mut prev = 0.0;
    for b in [1u32, 2, 4, 8, 16, 30] {
        let t = simulate_network_with_batch(&cfg, &net, b).effective_tmacs();
        assert!(t >= prev * 0.999, "batch {b}: {t:.1} after {prev:.1}");
        prev = t;
    }
}

/// More memory bandwidth can only help.
#[test]
fn bandwidth_monotonicity() {
    let mut cfg = SimConfig::paper_supernpu();
    let net = zoo::vgg16();
    let mut prev = 0.0;
    for bw in [100.0, 300.0, 900.0, 2700.0] {
        cfg.mem_bandwidth_gbs = bw;
        let t = simulate_network(&cfg, &net).effective_tmacs();
        assert!(t >= prev, "bw {bw}: {t:.1} after {prev:.1}");
        prev = t;
    }
}

/// ERSFQ re-estimation changes power but not a single cycle.
#[test]
fn bias_scheme_is_performance_neutral() {
    let rsfq = SimConfig::paper_supernpu();
    let ersfq = rsfq.with_bias(sfq_cells::BiasScheme::Ersfq);
    for net in zoo::all() {
        let a = simulate_network(&rsfq, &net);
        let b = simulate_network(&ersfq, &net);
        assert_eq!(a.total_cycles(), b.total_cycles(), "{}", net.name());
        assert!(b.total_power_w() < a.total_power_w(), "{}", net.name());
    }
}

/// The workload zoo's intensity ordering must show up in the TPU
/// comparator: depthwise-heavy MobileNet utilizes the 256-tall array
/// worst among the ImageNet CNNs.
#[test]
fn tpu_utilization_ordering() {
    let tpu = scale_sim::CmosNpuConfig::tpu_core();
    let mob = scale_sim::simulate_network(&tpu, &zoo::mobilenet()).pe_utilization();
    for net in [
        zoo::vgg16(),
        zoo::resnet50(),
        zoo::googlenet(),
        zoo::alexnet(),
    ] {
        let u = scale_sim::simulate_network(&tpu, &net).pe_utilization();
        assert!(u > mob, "{} util {u:.3} <= MobileNet {mob:.3}", net.name());
    }
}
