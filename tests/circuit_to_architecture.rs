//! From circuit physics to architecture: the transient JJ simulator
//! and the analytic stack must tell one consistent story.

use jjsim::extract::{jtl_characteristics, max_shift_frequency};
use jjsim::stdlib::{DffParams, JtlParams};
use sfq_cells::{CellLibrary, GateKind};
use sfq_estimator::clocking::feedback_comparison;
use sfq_estimator::{estimate, NpuConfig};

/// The transient simulator's per-stage JTL delay and the cell
/// library's characterized delay agree to within a factor of two —
/// both are picosecond-scale SFQ propagation.
#[test]
fn jtl_delay_consistent() {
    let golden = jtl_characteristics(8, &JtlParams::default()).expect("transient converges");
    let lib = CellLibrary::aist_10um();
    let cell = lib.gate(GateKind::Jtl).delay_ps * 1e-12;
    let ratio = golden.delay_s / cell;
    assert!(ratio > 0.5 && ratio < 2.5, "delay ratio {ratio:.2}");
}

/// Switching energy scale: transient dissipation per event lands near
/// Ic·Φ0 ≈ 2×10⁻¹⁹ J — the number the paper's introduction quotes.
#[test]
fn switching_energy_near_ic_phi0() {
    let golden = jtl_characteristics(8, &JtlParams::default()).expect("transient converges");
    let ic_phi0 = 1.0e-4 * jjsim::PHI0;
    let ratio = golden.energy_j / ic_phi0;
    assert!(ratio > 0.2 && ratio < 5.0, "energy/IcΦ0 = {ratio:.2}");
}

/// The analytic counter-flow shift-register frequency and the measured
/// functional clock-rate limit agree to within ~2×; both sit in the
/// tens of GHz.
#[test]
fn shift_register_frequency_consistent() {
    let measured =
        max_shift_frequency(&DffParams::default(), 5.0, 50.0).expect("bisection converges") / 1e9;
    let model = feedback_comparison(&CellLibrary::aist_10um()).sr_feedback_ghz;
    assert!(
        measured > 20.0 && measured < 200.0,
        "measured {measured:.1} GHz"
    );
    let ratio = model / measured;
    assert!(ratio > 0.5 && ratio < 2.0, "model/measured = {ratio:.2}");
}

/// Architecture-level sanity: a 2×2 4-bit NPU (the paper's validation
/// die, Fig. 12(c)) estimates at tens of GHz, milliwatt static power
/// and a few mm² — die-scale numbers, not chip-scale.
#[test]
fn validation_die_scale() {
    let tiny = NpuConfig {
        name: "2x2 4-bit".into(),
        array_height: 2,
        array_width: 2,
        bits: 4,
        regs_per_pe: 1,
        ifmap_buf_bytes: 64,
        output_buf_bytes: 64,
        psum_buf_bytes: 64,
        weight_buf_bytes: 16,
        division: 1,
        integrated_output: false,
    };
    let est = estimate(&tiny, &CellLibrary::aist_10um());
    assert!(est.frequency_ghz > 30.0 && est.frequency_ghz < 80.0);
    assert!(
        est.static_w > 1e-4 && est.static_w < 0.1,
        "{} W",
        est.static_w
    );
    assert!(est.area_mm2_native > 0.1 && est.area_mm2_native < 50.0);
    // And it is ~6 orders of magnitude smaller than the full chip.
    let full = estimate(&NpuConfig::paper_supernpu(), &CellLibrary::aist_10um());
    assert!(full.jj_total > 1000 * est.jj_total);
}

/// The full-adder feedback penalty measured analytically matches the
/// paper's qualitative claim: counter-flow clocked accumulators run at
/// less than half the feed-forward rate.
#[test]
fn feedback_halves_frequency() {
    let f = feedback_comparison(&CellLibrary::aist_10um());
    assert!(f.fa_feedback_ghz < 0.5 * f.fa_feedforward_ghz);
    assert!(f.sr_feedback_ghz < 0.65 * f.sr_feedforward_ghz);
}
