//! Workspace-level tests of the run-ledger provenance layer
//! (`sfq_obs::ledger`) and the `supernpu_report` observatory:
//! manifest serde round-trip, atomic-write survival of a torn
//! mid-write temp file, `ledger.jsonl` validity under concurrent
//! appends, and byte-identical observatory output regardless of the
//! thread configuration.
//!
//! The ledger's run record is process-global, so the lifecycle pieces
//! run inside one test function in a fixed order (same pattern as the
//! observability tests).

use std::path::PathBuf;

use sfq_obs::ledger::{self, KnobSetting, RunManifest, RunOutcome};
use supernpu_bench::gate::Tolerances;
use supernpu_bench::observatory::{build, load_ledger, BenchFile};

fn tempdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("supernpu_ledger_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn manifest(bin: &str, seq: u64, duration_ms: f64) -> RunManifest {
    RunManifest {
        schema_version: sfq_obs::SCHEMA_VERSION,
        bin: bin.to_owned(),
        seq,
        args: vec!["--points".into(), "100".into()],
        env: vec![
            KnobSetting {
                name: "SUPERNPU_FAULT_SEED".into(),
                value: "42".into(),
            },
            KnobSetting {
                name: "SUPERNPU_THREADS".into(),
                value: "4".into(),
            },
        ],
        threads: 4,
        chunk: 0,
        lanes: 4,
        seeds: vec![42],
        cargo_profile: "release".into(),
        target: "x86_64-linux".into(),
        duration_ms,
        outcome: RunOutcome::Ok,
        cache_hits: 37,
        cache_misses: 3,
        artifacts: vec!["BENCH_sweeps.json".into(), "results/metrics.json".into()],
    }
}

#[test]
fn manifest_serde_round_trip() {
    for outcome in [
        RunOutcome::Ok,
        RunOutcome::GateFail,
        RunOutcome::Panicked,
        RunOutcome::BudgetExceeded,
    ] {
        let mut m = manifest("bench_sweeps", 7, 123.5);
        m.outcome = outcome;
        let compact = serde_json::to_string(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&compact).unwrap();
        assert_eq!(back, m, "compact round-trip");
        let pretty = serde_json::to_string_pretty(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&pretty).unwrap();
        assert_eq!(back, m, "pretty round-trip");
    }
}

/// Torn-tmp pattern (from the faults MC checkpoints): a writer that
/// panics mid-write leaves only a `.tmp` sibling; the destination is
/// either absent or the last complete manifest, and the next
/// successful write clears the residue.
#[test]
fn atomic_write_survives_injected_mid_write_panic() {
    let dir = tempdir("torn");
    let path = dir.join("fig20_buffer_opt-0001.json");
    let good = serde_json::to_string_pretty(&manifest("fig20_buffer_opt", 1, 10.0)).unwrap();
    ledger::atomic_write(&path, good.as_bytes()).unwrap();

    // Injected mid-write crash: the staging file exists, torn, when
    // the writer dies. Simulate by writing the torn prefix exactly
    // where atomic_write stages, then panicking before the rename.
    let result = std::panic::catch_unwind(|| {
        std::fs::write(ledger::tmp_path(&path), &good.as_bytes()[..17]).unwrap();
        panic!("injected mid-write crash");
    });
    assert!(result.is_err(), "the injected panic must fire");

    // The destination still parses as the last complete manifest.
    let text = std::fs::read_to_string(&path).unwrap();
    let m: RunManifest = serde_json::from_str(&text).unwrap();
    assert_eq!(m.seq, 1);

    // A new write goes through cleanly and clears the residue.
    let newer = serde_json::to_string_pretty(&manifest("fig20_buffer_opt", 2, 11.0)).unwrap();
    ledger::atomic_write(&path, newer.as_bytes()).unwrap();
    let m: RunManifest = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(m.seq, 2);
    assert!(!ledger::tmp_path(&path).exists(), "no staging residue");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent bins sharing one ledger directory: every append is a
/// single `O_APPEND` write, so the jsonl stays line-valid no matter
/// how the writers interleave.
#[test]
fn jsonl_append_is_valid_after_concurrent_writers() {
    let dir = tempdir("jsonl");
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 10;
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let dir = &dir;
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    let m = manifest(&format!("bin{w}"), i + 1, (w * 100 + i) as f64);
                    let line = serde_json::to_string(&m).unwrap();
                    ledger::append_jsonl(dir, &line).unwrap();
                }
            });
        }
    });
    let text = std::fs::read_to_string(dir.join("ledger.jsonl")).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len() as u64, WRITERS * PER_WRITER);
    for (i, line) in lines.iter().enumerate() {
        let m: Result<RunManifest, _> = serde_json::from_str(line);
        assert!(m.is_ok(), "line {} is not a manifest: {line}", i + 1);
    }
    // And the observatory's loader agrees.
    let runs = load_ledger(&dir).unwrap();
    assert_eq!(runs.len() as u64, WRITERS * PER_WRITER);
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end lifecycle against an isolated directory: begin →
/// config/seed/artifact/outcome → flush, twice (the panic hook and
/// the exit guard both flush), must yield one manifest file, one
/// jsonl line, and an escalation-respecting outcome. One test body:
/// the run record is process-global.
#[test]
fn lifecycle_flush_is_idempotent_and_escalates_outcome() {
    let dir = tempdir("lifecycle");
    ledger::set_dir(Some(&dir));
    ledger::begin("test_bin");
    ledger::set_config(8, 16, 4);
    ledger::record_seed(1234);
    ledger::record_artifact(&dir.join("BENCH_x.json"));
    ledger::set_outcome(RunOutcome::BudgetExceeded);
    ledger::set_outcome(RunOutcome::GateFail);
    ledger::set_outcome(RunOutcome::BudgetExceeded); // must not de-escalate
    ledger::flush();
    ledger::flush(); // double flush: same seq, single jsonl line

    let manifest_path = dir.join("test_bin-0001.json");
    let m: RunManifest =
        serde_json::from_str(&std::fs::read_to_string(&manifest_path).unwrap()).unwrap();
    assert_eq!(m.schema_version, sfq_obs::SCHEMA_VERSION);
    assert_eq!(m.bin, "test_bin");
    assert_eq!(m.seq, 1);
    assert_eq!((m.threads, m.chunk, m.lanes), (8, 16, 4));
    assert!(m.seeds.contains(&1234));
    assert_eq!(m.outcome, RunOutcome::GateFail, "escalation only");
    assert!(!m.cargo_profile.is_empty() && !m.target.is_empty());
    assert!(
        m.artifacts.iter().any(|a| a.ends_with("BENCH_x.json")),
        "{:?}",
        m.artifacts
    );

    let jsonl = std::fs::read_to_string(dir.join("ledger.jsonl")).unwrap();
    assert_eq!(jsonl.lines().count(), 1, "double flush appends once");

    // A second run of the same bin gets the next sequence number.
    ledger::begin("test_bin");
    ledger::flush();
    assert!(dir.join("test_bin-0002.json").exists());
    assert_eq!(
        std::fs::read_to_string(dir.join("ledger.jsonl"))
            .unwrap()
            .lines()
            .count(),
        2
    );

    // Disabled: everything below is a no-op and leaves no trace.
    ledger::set_dir(None);
    ledger::begin("ghost_bin");
    ledger::flush();
    assert!(!dir.join("ghost_bin-0001.json").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The observatory is a pure function of its inputs: its output must
/// be byte-identical under any `SUPERNPU_THREADS`/`set_threads`
/// configuration, and must both show a trend row and flag an
/// injected regression on a fixed two-run fixture.
#[test]
fn observatory_output_is_thread_invariant_and_flags_regressions() {
    let runs = vec![
        manifest("bench_sweeps", 1, 100.0),
        manifest("bench_sweeps", 2, 5000.0), // injected regression
    ];
    let bench = vec![BenchFile {
        name: "BENCH_sweeps.json".into(),
        schema: "sweeps".into(),
        schema_version: u64::from(sfq_obs::SCHEMA_VERSION),
    }];
    let tol = Tolerances {
        factor: 1.5,
        abs_ms: 100.0,
    };

    let reference = build(&runs, &bench, &tol);
    assert_eq!(reference.groups, 1, "same config joins into one trend");
    assert_eq!(reference.regressions, 1);
    assert!(reference.markdown.contains("REGRESSION"));
    assert!(reference.markdown.contains("| 2 |"), "trend row for seq 2");
    assert!(reference.html.contains("class=\"regression\""));

    for threads in [1, 2, 7] {
        sfq_par::set_threads(threads);
        let again = build(&runs, &bench, &tol);
        assert_eq!(
            again, reference,
            "observatory output changed at {threads} threads"
        );
    }
    sfq_par::clear_threads();
}
