//! The characterization cache must make repeated characterizations
//! free: the first `sfq_chars::characterize()` runs the jjsim
//! testbenches, every later call with the same inputs must run *zero*
//! new transients. Observable through the [`jjsim::transient_runs`]
//! counter, which the solver bumps at the top of every transient.
//!
//! One `#[test]` on purpose: the counter and caches are process-wide,
//! and this integration binary runs nothing else, so the transient
//! count is attributable to the calls below.

use sfq_cells::CellLibrary;
use sfq_estimator::{estimate, estimate_cache_stats, NpuConfig};

#[test]
fn second_characterization_runs_no_new_transients() {
    assert_eq!(jjsim::transient_runs(), 0, "no transients before measuring");

    let first = sfq_chars::characterize().expect("testbenches converge");
    let runs_after_first = jjsim::transient_runs();
    assert!(runs_after_first > 0, "first characterization must simulate");
    let (hits0, misses0) = sfq_chars::measure_cache_stats();
    assert_eq!((hits0, misses0), (0, 1));

    let second = sfq_chars::characterize().expect("cache hit cannot fail");
    assert_eq!(
        jjsim::transient_runs(),
        runs_after_first,
        "second characterization re-ran jjsim transients"
    );
    let (hits1, misses1) = sfq_chars::measure_cache_stats();
    assert_eq!((hits1, misses1), (1, 1));

    // The cached library is the same library, bit for bit.
    for (kind, g) in first.iter() {
        let h = second.gate(kind);
        assert_eq!(g.delay_ps.to_bits(), h.delay_ps.to_bits(), "{kind:?}");
        assert_eq!(g.energy_aj.to_bits(), h.energy_aj.to_bits(), "{kind:?}");
    }

    // Downstream, repeated architecture estimates memoize too: the
    // second estimate of the same design under the same library is a
    // cache hit and returns an identical estimate (and, transitively,
    // never touches jjsim either).
    let cfg = NpuConfig::paper_supernpu();
    let lib = CellLibrary::aist_10um();
    let e1 = estimate(&cfg, &lib);
    let (_, m_before) = estimate_cache_stats();
    let e2 = estimate(&cfg, &lib);
    let (hits, misses) = estimate_cache_stats();
    assert_eq!(misses, m_before, "second estimate must not recompute");
    assert!(hits >= 1);
    assert_eq!(e1.frequency_ghz.to_bits(), e2.frequency_ghz.to_bits());
    assert_eq!(e1.area_mm2_28nm.to_bits(), e2.area_mm2_28nm.to_bits());
    assert_eq!(
        jjsim::transient_runs(),
        runs_after_first,
        "estimates must never run transients"
    );

    // Clearing the cache forces a real re-measurement.
    sfq_chars::clear_measure_cache();
    let _ = sfq_chars::measure().expect("testbenches converge");
    assert!(jjsim::transient_runs() > runs_after_first);
}
