//! Incremental re-characterization: `sfq_chars::measure_with` memoizes
//! each testbench family (JTL, DFF, clocked AND) on its own parameter
//! fingerprint, so a sweep point that perturbs one family's parameters
//! re-runs only that family's transients. Observed through the
//! process-global `jjsim.solver.transient_runs` counter, which is why
//! everything lives in a single `#[test]` (same pattern as
//! `characterization_cache.rs`).

use jjsim::stdlib::{AndParams, DffParams, JtlParams};

#[test]
fn perturbing_one_family_reruns_only_its_testbenches() {
    sfq_chars::clear_measure_cache();
    let jtl = JtlParams::default();
    let dff = DffParams::default();
    let and = AndParams::default();

    // Cold fill: every testbench runs.
    let t0 = jjsim::transient_runs();
    let base = sfq_chars::measure_with(&jtl, &dff, &and).expect("baseline measurement");
    let full = jjsim::transient_runs() - t0;
    assert!(full > 0, "cold characterization must run transients");

    // Identical parameters: the outer memo answers, zero transients.
    let t = jjsim::transient_runs();
    let again = sfq_chars::measure_with(&jtl, &dff, &and).expect("memoized measurement");
    assert_eq!(jjsim::transient_runs(), t, "outer memo hit must be free");
    assert_eq!(again, base);

    // Perturb only the AND storage inductance: the JTL and DFF numbers
    // must be reused bit-identically without re-running their benches.
    let and2 = AndParams {
        l_store: and.l_store * 1.01,
        ..and
    };
    let t = jjsim::transient_runs();
    let m = sfq_chars::measure_with(&jtl, &dff, &and2).expect("AND perturbation");
    let d_and = jjsim::transient_runs() - t;
    assert!(d_and > 0, "changed AND params must re-run AND benches");
    assert!(d_and < full, "AND perturbation must not re-run everything");
    for (got, want) in [
        (m.jtl_delay_ps, base.jtl_delay_ps),
        (m.jtl_energy_aj, base.jtl_energy_aj),
        (m.splitter_delay_ps, base.splitter_delay_ps),
        (m.dff_delay_ps, base.dff_delay_ps),
        (m.dff_energy_aj, base.dff_energy_aj),
        (m.sr_max_ghz, base.sr_max_ghz),
    ] {
        assert_eq!(got.to_bits(), want.to_bits(), "unperturbed family drifted");
    }

    // Perturb only the DFF parameters.
    let dff2 = DffParams {
        l_store: dff.l_store * 1.01,
        ..dff
    };
    let t = jjsim::transient_runs();
    let m = sfq_chars::measure_with(&jtl, &dff2, &and).expect("DFF perturbation");
    let d_dff = jjsim::transient_runs() - t;
    assert!(d_dff > 0);
    assert_eq!(m.jtl_delay_ps.to_bits(), base.jtl_delay_ps.to_bits());
    assert_eq!(m.and_delay_ps.to_bits(), base.and_delay_ps.to_bits());
    assert_eq!(m.and_energy_aj.to_bits(), base.and_energy_aj.to_bits());

    // Perturb only the JTL parameters.
    let jtl2 = JtlParams {
        l: jtl.l * 1.01,
        ..jtl
    };
    let t = jjsim::transient_runs();
    let m = sfq_chars::measure_with(&jtl2, &dff, &and).expect("JTL perturbation");
    let d_jtl = jjsim::transient_runs() - t;
    assert!(d_jtl > 0);
    assert_eq!(m.dff_delay_ps.to_bits(), base.dff_delay_ps.to_bits());
    assert_eq!(m.sr_max_ghz.to_bits(), base.sr_max_ghz.to_bits());
    assert_eq!(m.and_delay_ps.to_bits(), base.and_delay_ps.to_bits());

    // The three family costs partition the cold fill exactly: no
    // testbench hides outside the per-family memos.
    assert_eq!(
        d_jtl + d_dff + d_and,
        full,
        "family transient counts must sum to a cold characterization"
    );

    // Returning to already-seen parameter sets is free again, even
    // though the outer key (the full triple) is new in one case.
    let t = jjsim::transient_runs();
    let m = sfq_chars::measure_with(&jtl2, &dff2, &and2).expect("recombined parameters");
    assert_eq!(
        jjsim::transient_runs(),
        t,
        "every family is memoized; recombination must run nothing"
    );
    assert!(m.jtl_delay_ps > 0.0);

    sfq_chars::clear_measure_cache();
}
