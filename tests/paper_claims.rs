//! End-to-end integration tests of the paper's headline claims,
//! exercising every crate together through the public API.

use supernpu::designs::DesignPoint;
use supernpu::evaluator::{
    average_speedup, fig15_cycle_breakdown, fig23_performance, table1_setup, table3_power,
};

/// §VI-B / Fig. 23: SuperNPU outperforms the TPU core by tens of times
/// (paper: 23×), while the unoptimized Baseline falls *below* the TPU
/// (paper: 0.4×).
#[test]
fn headline_speedup() {
    let rows = fig23_performance();
    let supernpu = average_speedup(&rows, DesignPoint::SuperNpu);
    let baseline = average_speedup(&rows, DesignPoint::Baseline);
    assert!(
        supernpu > 10.0 && supernpu < 40.0,
        "SuperNPU speedup {supernpu:.1} outside the reproduction band"
    );
    assert!(
        baseline < 1.0,
        "Baseline must trail the TPU, got {baseline:.2}"
    );
}

/// §I / §V: the architectural optimizations span a performance variance
/// of tens of times (paper: "around 60 times").
#[test]
fn optimization_swing_is_tens_of_x() {
    let rows = fig23_performance();
    let swing = average_speedup(&rows, DesignPoint::SuperNpu)
        / average_speedup(&rows, DesignPoint::Baseline);
    assert!(swing > 20.0, "optimization swing {swing:.0}x");
}

/// Fig. 23 ordering: each optimization step helps, on every workload
/// the geomean ordering is monotone.
#[test]
fn optimizations_are_monotone_in_geomean() {
    let rows = fig23_performance();
    let mut prev = 0.0;
    for d in DesignPoint::SFQ_DESIGNS {
        let s = average_speedup(&rows, d);
        assert!(s > prev, "{d} regressed: {s:.2} after {prev:.2}");
        prev = s;
    }
}

/// Fig. 15: the naïve design drowns in preparation cycles.
#[test]
fn baseline_preparation_dominates() {
    for row in fig15_cycle_breakdown() {
        assert!(
            row.preparation > 0.75,
            "{}: preparation only {:.0}%",
            row.network,
            100.0 * row.preparation
        );
    }
}

/// Table I: the SFQ machines clock near 52.6 GHz — ~75× the TPU's
/// 0.7 GHz — and their 28 nm-equivalent area stays under the TPU die.
#[test]
fn table1_frequency_and_area() {
    let rows = table1_setup();
    let tpu = &rows[0];
    assert_eq!(tpu.design, "TPU");
    for r in &rows[1..] {
        assert!(
            (r.frequency_ghz - 52.6).abs() < 2.0,
            "{}: {:.1} GHz",
            r.design,
            r.frequency_ghz
        );
        assert!(
            r.frequency_ghz / tpu.frequency_ghz > 60.0,
            "{}: SFQ clock advantage lost",
            r.design
        );
        assert!(
            r.area_mm2_28nm < 330.0,
            "{}: {:.0} mm²",
            r.design,
            r.area_mm2_28nm
        );
    }
}

/// Table III: the four power rows keep the paper's ordering —
/// ERSFQ free-cooled ≫ TPU ≳ ERSFQ cooled > RSFQ uncooled ≫ RSFQ cooled.
#[test]
fn table3_efficiency_ordering() {
    let rows = table3_power();
    let eff = |name: &str| {
        rows.iter()
            .find(|r| r.variant.starts_with(name))
            .unwrap_or_else(|| panic!("{name} missing"))
            .perf_per_watt_vs_tpu
    };
    let ersfq_free = eff("ERSFQ-SuperNPU (w/o");
    let ersfq_cooled = eff("ERSFQ-SuperNPU (w/ ");
    let rsfq_free = eff("RSFQ-SuperNPU (w/o");
    let rsfq_cooled = eff("RSFQ-SuperNPU (w/ ");
    assert!(ersfq_free > 100.0, "ERSFQ free-cooled {ersfq_free:.0}");
    assert!(ersfq_free > ersfq_cooled);
    assert!(ersfq_cooled > rsfq_free);
    assert!(rsfq_free > rsfq_cooled);
    assert!(rsfq_cooled < 0.01, "RSFQ cooled {rsfq_cooled:.4}");
}

/// MobileNet benefits most from the narrow array (paper: ~42×, the
/// highest of the six workloads).
#[test]
fn mobilenet_gets_best_speedup() {
    let rows = fig23_performance();
    let best = rows
        .iter()
        .max_by(|a, b| {
            a.speedup(DesignPoint::SuperNpu)
                .partial_cmp(&b.speedup(DesignPoint::SuperNpu))
                .expect("finite speedups")
        })
        .expect("non-empty rows");
    assert_eq!(best.network, "MobileNet");
}
