//! Cross-crate robustness tests of the fault-injection stack
//! (PR 4): seeded fault plans and perturbed-cell probes never panic
//! and always reach a verdict, the Monte-Carlo harness is
//! bit-identical across thread counts, and an interrupted sweep
//! resumes from its checkpoint without changing a single outcome.

use dnn_models::{Layer, Network};
use proptest::prelude::*;
use sfq_faults::{draw_fault_plan, run_outcomes, Cell, Injection, McOptions, Outcome};
use sfq_npu_sim::{simulate_network_with_fault_plan, SimConfig};

/// Serialize the tests that reconfigure the global worker pool or
/// swap the panic hook.
static GLOBAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn cells() -> [Cell; 3] {
    Cell::all()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A seeded pulse-fault plan applied to a small CNN never panics
    /// and keeps the graceful-degradation accounting sane: timing and
    /// energy stay finite, and the corrupted-MAC tally never exceeds
    /// the work actually performed.
    #[test]
    fn fault_plans_degrade_gracefully(
        seed in any::<u64>(),
        intensity in 0.0f64..=2.0,
        layers in 1usize..=4,
        batch in 1u32..=4,
    ) {
        let net = Network::new(
            "prop-cnn",
            (0..layers)
                .map(|i| Layer::conv(&format!("c{i}"), (14, 14), 8, 16, 3, 1, 1))
                .collect(),
        );
        let plan = draw_fault_plan(seed, layers, intensity);
        let cfg = SimConfig::paper_baseline();
        let stats = simulate_network_with_fault_plan(&cfg, &net, batch, &plan);
        prop_assert!(stats.total_cycles() > 0);
        prop_assert!(stats.dynamic_energy().total_j().is_finite());
        let faults = stats.fault_counts();
        prop_assert!(faults.total() <= stats.total_macs());
        let frac = stats.fault_fraction();
        prop_assert!((0.0..=1.0).contains(&frac), "fault fraction {frac}");
        // Determinism: the same (seed, layers, intensity) redraws the
        // same plan.
        prop_assert_eq!(draw_fault_plan(seed, layers, intensity), plan);
    }

    /// A perturbed stdlib-cell probe always reaches a discrete verdict
    /// for every sample — any seed, any cell, any σ. Panics cannot
    /// escape (they become [`Outcome::Panicked`]) and solver errors
    /// become [`Outcome::NonConvergent`], so the harness itself only
    /// fails for unusable options, which this test never supplies.
    #[test]
    fn perturbed_probes_always_yield_a_verdict(
        cell_idx in 0usize..3,
        sigma in 0.0f64..=0.6,
        seed in any::<u64>(),
    ) {
        let cell = cells()[cell_idx];
        let outcomes = run_outcomes(cell, sigma, seed, &McOptions::new(2))
            .expect("valid options never produce a harness error");
        prop_assert_eq!(outcomes.len(), 2);
        // And bit-identical on a rerun with the same seed.
        let again = run_outcomes(cell, sigma, seed, &McOptions::new(2))
            .expect("valid options never produce a harness error");
        prop_assert_eq!(outcomes, again);
    }
}

/// The satellite determinism requirement: the same seed gives
/// bit-identical outcomes whether the pool runs 1 worker or 4
/// (i.e. independent of `SUPERNPU_THREADS`).
#[test]
fn same_seed_is_bit_identical_across_thread_counts() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    for cell in cells() {
        let opts = McOptions::new(6);
        sfq_par::set_threads(1);
        let serial = run_outcomes(cell, 0.15, 2024, &opts).expect("harness ok");
        sfq_par::set_threads(4);
        let parallel = run_outcomes(cell, 0.15, 2024, &opts).expect("harness ok");
        sfq_par::clear_threads();
        assert_eq!(serial, parallel, "{} diverged across pools", cell.name());
    }
}

/// An injected panic and an injected non-convergence poison exactly
/// their own samples; the surrounding sweep completes.
#[test]
fn injected_failures_are_contained() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut opts = McOptions::new(6);
    opts.injection = Injection {
        panic_at: vec![1],
        non_convergent_at: vec![4],
    };
    let outcomes = run_outcomes(Cell::Dff, 0.05, 11, &opts);
    std::panic::set_hook(hook);
    let outcomes = outcomes.expect("harness survives injected failures");
    assert_eq!(outcomes[1], Outcome::Panicked);
    assert_eq!(outcomes[4], Outcome::NonConvergent);
    for (i, o) in outcomes.iter().enumerate() {
        if i != 1 && i != 4 {
            assert!(
                matches!(o, Outcome::Pass | Outcome::Fail),
                "sample {i}: {o:?}"
            );
        }
    }
}

/// Interrupted-sweep recovery: persist a prefix checkpoint (as an
/// interrupted run would), resume, and require the full outcome
/// vector to be bit-identical to an uninterrupted run.
#[test]
fn interrupted_sweep_resumes_bit_identically() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join("supernpu_fault_injection_resume");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("ckpt.json");

    let (cell, sigma, seed) = (Cell::ClockedAnd, 0.1f64, 7u64);
    let reference = run_outcomes(cell, sigma, seed, &McOptions::new(8)).expect("harness ok");

    // The checkpoint JSON shape is stable public behaviour: write the
    // first 3 outcomes the way an interrupted checkpointed run leaves
    // them on disk.
    let prefix = serde_json::to_string(&reference[..3].to_vec()).expect("serialize prefix");
    let text = format!(
        "{{\"cell\": \"{}\", \"sigma_bits\": {}, \"seed\": {seed}, \"samples\": 8, \
         \"outcomes\": {prefix}}}",
        cell.name(),
        sigma.to_bits(),
    );
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(&path, text).expect("write checkpoint");

    let mut opts = McOptions::new(8);
    opts.checkpoint_every = 2;
    opts.checkpoint_path = Some(path);
    opts.resume = true;
    let resumed = run_outcomes(cell, sigma, seed, &opts).expect("resume ok");
    assert_eq!(resumed, reference, "resume must not change any outcome");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Torn-write regression (the checkpoint writer is atomic: temp
/// sibling + fsync + rename). A garbage `.tmp` left by a crash
/// mid-write must never be mistaken for the checkpoint, and a
/// checkpointed run over it must leave a clean, parseable, resumable
/// checkpoint with no temp residue.
#[test]
fn torn_checkpoint_write_never_corrupts_resume() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join("supernpu_fault_injection_torn");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("ckpt.json");
    let tmp = dir.join("ckpt.json.tmp");

    let (cell, sigma, seed) = (Cell::Dff, 0.05f64, 11u64);
    let reference = run_outcomes(cell, sigma, seed, &McOptions::new(6)).expect("harness ok");

    // Simulate the crash the old non-atomic writer was vulnerable to:
    // a torn, unparseable temp file beside the checkpoint target.
    std::fs::write(&tmp, "{\"cell\": \"DF").expect("write torn tmp");

    let mut opts = McOptions::new(6);
    opts.checkpoint_every = 2;
    opts.checkpoint_path = Some(path.clone());
    opts.resume = true;
    let outcomes =
        run_outcomes(cell, sigma, seed, &opts).expect("cold start despite torn tmp file");
    assert_eq!(outcomes, reference, "torn tmp must not perturb outcomes");

    // The atomic writer renamed its temp over the target: the final
    // checkpoint parses, covers every sample, and nothing torn
    // lingers.
    assert!(!tmp.exists(), "temp file must be consumed by the rename");
    let text = std::fs::read_to_string(&path).expect("final checkpoint readable");
    assert!(
        text.contains("\"outcomes\""),
        "final checkpoint has outcomes"
    );
    let resumed = run_outcomes(cell, sigma, seed, &opts).expect("resume from final checkpoint");
    assert_eq!(resumed, reference, "resume after atomic write is clean");
    let _ = std::fs::remove_dir_all(&dir);
}
