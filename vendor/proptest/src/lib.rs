//! Offline vendored stand-in for `proptest`.
//!
//! A deterministic mini property-testing engine covering the API this
//! workspace's test suites use: the [`proptest!`] macro, [`Strategy`]
//! with `prop_map` / `prop_filter` / `prop_filter_map` adapters, range
//! and tuple strategies, [`Just`], [`prop_oneof!`], [`any`], and
//! [`ProptestConfig::with_cases`]. `prop_assert!` / `prop_assert_eq!`
//! forward to `assert!` / `assert_eq!` (no shrinking — a failing case
//! panics with its generated inputs still printed by the assert).
//!
//! Generation is seeded per test name, so runs are reproducible.

/// SplitMix64 generator — tiny, seedable, and plenty for test-input
/// generation.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seed from a test name (deterministic across runs).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Rng(h | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi]` (inclusive).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }
}

/// Run configuration; only `cases` is modeled.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 100 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value; `None` means the candidate was rejected
    /// (e.g. by `prop_filter_map`) and the runner should retry.
    fn generate(&self, rng: &mut Rng) -> Option<Self::Value>;

    /// Map generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values passing the predicate.
    fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Map-and-filter in one step.
    fn prop_filter_map<O, F>(self, _reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> Option<T> {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut Rng) -> Option<Self::Value> {
        (**self).generate(rng)
    }
}

/// Always produces a clone of its payload.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut Rng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// `prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut Rng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// `prop_filter_map` adapter.
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut Rng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// Uniform choice between boxed alternatives (see [`prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Build from the macro's boxed arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> Option<T> {
        let idx = rng.range_u64(0, self.arms.len() as u64 - 1) as usize;
        self.arms[idx].generate(rng)
    }
}

// ------------------------------------------------------------- ranges

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                Some(rng.range_u64(self.start as u64, self.end as u64 - 1) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> Option<$t> {
                Some(rng.range_u64(*self.start() as u64, *self.end() as u64) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                Some((self.start as i64 + (rng.range_u64(0, span - 1) as i64)) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> Option<$t> {
                let span = (*self.end() as i64 - *self.start() as i64) as u64;
                Some((*self.start() as i64 + (rng.range_u64(0, span) as i64)) as $t)
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> Option<f64> {
        Some(self.start + (self.end - self.start) * rng.next_f64())
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> Option<f64> {
        Some(self.start() + (self.end() - self.start()) * rng.next_f64())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    };
}
tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

// ------------------------------------------------------------- any

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut Rng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Strategy wrapper for [`Arbitrary`] types.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Box a strategy for [`prop_oneof!`]. A function (not an `as` cast)
/// so integer-literal inference unifies across the macro's arms.
pub fn boxed_arm<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Namespace mirroring proptest's `prop::` module tree.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Rng, Strategy};

        /// Strategy for `Vec`s of generated elements (see [`vec`]).
        pub struct VecStrategy<S> {
            elem: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut Rng) -> Option<Vec<S::Value>> {
                let n = self.len.generate(rng)?;
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// A `Vec` whose length is drawn from `len` (half-open, e.g.
        /// `1..6`) and whose elements are drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }
    }
}

// ------------------------------------------------------------- macros

/// Uniform choice across heterogeneous strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed_arm($arm)),+])
    };
}

/// Property assertion (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (panics on failure, like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Reject the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` accepted generations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::Rng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                while __accepted < __cfg.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __cfg.cases.saturating_mul(200) + 1000,
                        "strategy rejected too many candidate inputs"
                    );
                    $(
                        let $arg = match $crate::Strategy::generate(&($strat), &mut __rng) {
                            Some(v) => v,
                            None => continue,
                        };
                    )+
                    __accepted += 1;
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `use proptest::prelude::*` — everything the test files need.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Rng, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u32..=9, b in 0.25f64..0.75, c in -5i32..5) {
            prop_assert!((3..=9).contains(&a));
            prop_assert!((0.25..0.75).contains(&b));
            prop_assert!((-5..5).contains(&c));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(2u32), Just(4)].prop_map(|x| x * 10)) {
            prop_assert!(v == 20 || v == 40);
        }

        #[test]
        fn filter_map_rejections_retry(v in (0u32..100).prop_filter_map("even only", |x| {
            if x % 2 == 0 { Some(x) } else { None }
        })) {
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = Rng::from_name("x");
        let mut b = Rng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
