//! Offline vendored stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync::{Mutex, RwLock}` exposing the
//! parking_lot calling convention: `lock()` / `read()` / `write()`
//! return guards directly (no `Result`). Poisoning is ignored — a
//! panic while holding a lock does not wedge later users, matching
//! parking_lot's non-poisoning semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with parking_lot's `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutably borrow the value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock with parking_lot's
/// `read()`/`write()` signatures.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutably borrow the value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
