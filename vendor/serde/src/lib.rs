//! Offline vendored stand-in for the `serde` crate.
//!
//! The build environment for this repository has no network access and
//! no registry cache, so the real serde cannot be fetched. This shim
//! provides the exact API subset the workspace uses: the `Serialize` /
//! `Deserialize` traits (over a JSON-shaped [`Value`] data model
//! instead of serde's visitor machinery), derive macros for plain
//! structs and enums, and implementations for the std types that
//! appear in workspace fields (integers, floats, `bool`, `String`,
//! tuples, arrays, `Vec`, `Option`, `BTreeMap`).
//!
//! Serialized shapes follow serde's JSON conventions so archived
//! results stay interchangeable with real-serde output: named structs
//! become objects, newtype structs unwrap, unit enum variants become
//! strings, data-carrying variants become single-key objects.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the serde_json data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative JSON numbers).
    I64(i64),
    /// Unsigned integer (non-negative integral JSON numbers).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; a pair list so field order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object pair list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer value, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Signed integer value, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// One-word description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: what was expected, what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build an error from a full message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// "expected X, got Y" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError::new(format!("expected {what}, got {}", got.kind()))
    }

    /// Missing-field error for struct deserialization.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError::new(format!("missing field `{field}` for {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can be turned into a [`Value`].
pub trait Serialize {
    /// Serialize `self` into the value data model.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserialize from the value data model.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

/// Look up a field in an object pair list (derive-macro helper).
pub fn find_field<'a>(pairs: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Render a serialized map key as an object-key string
/// (derive/collection helper). Map keys must serialize to strings or
/// integers, as in serde_json.
pub fn key_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must serialize to a string, got {}", other.kind()),
    }
}

// ---------------------------------------------------------------- impls

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32);

impl Serialize for u64 {
    fn serialize(&self) -> Value {
        Value::U64(*self)
    }
}
impl Deserialize for u64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_u64()
            .ok_or_else(|| DeError::expected("unsigned integer", v))
    }
}

impl Serialize for usize {
    fn serialize(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let raw = v
            .as_u64()
            .ok_or_else(|| DeError::expected("unsigned integer", v))?;
        usize::try_from(raw)
            .map_err(|_| DeError::new(format!("integer {raw} out of range for usize")))
    }
}

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let wide = i64::from(*self);
                if wide >= 0 { Value::U64(wide as u64) } else { Value::I64(wide) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32);

impl Serialize for i64 {
    fn serialize(&self) -> Value {
        if *self >= 0 {
            Value::U64(*self as u64)
        } else {
            Value::I64(*self)
        }
    }
}
impl Deserialize for i64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_i64().ok_or_else(|| DeError::expected("integer", v))
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::expected("number", v))? as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            Ok(Some(T::deserialize(v)?))
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        if items.len() != N {
            return Err(DeError::new(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::new("array length changed during deserialization"))
    }
}

macro_rules! ser_de_tuple {
    ($len:literal, $($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
                if items.len() != $len {
                    return Err(DeError::new(format!(
                        "expected tuple array of length {}, got {}", $len, items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    };
}
ser_de_tuple!(1, A: 0);
ser_de_tuple!(2, A: 0, B: 1);
ser_de_tuple!(3, A: 0, B: 1, C: 2);
ser_de_tuple!(4, A: 0, B: 1, C: 2, D: 3);
ser_de_tuple!(5, A: 0, B: 1, C: 2, D: 3, E: 4);
ser_de_tuple!(6, A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.serialize()), v.serialize()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, val)| {
                Ok((
                    K::deserialize(&Value::Str(k.clone()))?,
                    V::deserialize(val)?,
                ))
            })
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
