//! Offline vendored stand-in for `serde_json`.
//!
//! Implements the API subset the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`Error`], [`Value`] — on top of
//! the vendored `serde` shim's value data model. Output follows
//! serde_json's formatting (compact, and two-space-indent pretty).
//!
//! Numbers: integers print as integers; floats print via Rust's
//! shortest round-trip `{:?}` formatting; non-finite floats serialize
//! as `null` (serde_json's lossy behavior).

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

// ---------------------------------------------------------------- writing

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serialize to compact JSON.
///
/// # Errors
///
/// Infallible for the value model this shim supports; the `Result`
/// mirrors serde_json's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, &value.serialize());
    Ok(out)
}

/// Serialize to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the value model this shim supports; the `Result`
/// mirrors serde_json's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.serialize(), 0);
    Ok(out)
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid \\u escape"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > 128 {
            return Err(self.err("recursion limit exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }
}

/// Parse a JSON document into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::deserialize(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("jtl \"fast\"\n".into())),
            ("count".into(), Value::U64(42)),
            ("delay".into(), Value::F64(3.25)),
            ("neg".into(), Value::I64(-7)),
            (
                "list".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_shortest_roundtrip() {
        let compact = to_string(&[0.1f64, 1.0, 52.6]).unwrap();
        assert_eq!(compact, "[0.1,1.0,52.6]");
        let back: Vec<f64> = from_str(&compact).unwrap();
        assert_eq!(back, vec![0.1, 1.0, 52.6]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 garbage").is_err());
    }
}
