//! Offline vendored stand-in for `criterion`.
//!
//! Implements the slice of the Criterion API the workspace's benches
//! use — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId::from_parameter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — as a simple wall-clock harness: each
//! benchmark is warmed up briefly, then timed over a fixed batch of
//! iterations, and the mean per-iteration time is printed. No
//! statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Label a benchmark by its swept parameter.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Label a benchmark by function name and parameter.
    pub fn new<S: Into<String>, P: Display>(name: S, p: P) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), p))
    }
}

/// Passed to the benchmark closure; drives the timed iterations.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, keeping its return value alive so the call is
    /// not optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: a few untimed calls so lazy state is initialized.
        for _ in 0..2 {
            std::hint::black_box(routine());
        }
        let mut iters: u64 = 0;
        let budget = Duration::from_millis(300);
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= budget && iters >= 10 {
                break;
            }
            if iters >= 1_000_000 {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn report(label: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{label}: no iterations run");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    println!(
        "{label}: {:.3} ms/iter ({} iters in {:.1} ms)",
        per_iter * 1e3,
        b.iters,
        b.elapsed.as_secs_f64() * 1e3
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), &b);
        self
    }

    /// Run one unparameterized benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// End the group (a no-op in this shim; kept for API parity).
    pub fn finish(self) {}
}

/// The benchmark driver handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(name, &b);
        self
    }
}

/// Re-export so `criterion::black_box` callers work; prefer
/// `std::hint::black_box` in new code.
pub use std::hint::black_box;

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
