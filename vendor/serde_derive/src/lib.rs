//! Offline vendored stand-in for `serde_derive`.
//!
//! Hand-rolled token parsing (no `syn`/`quote` — the build environment
//! is offline), covering the shapes this workspace derives on:
//!
//! * named-field structs,
//! * tuple structs (newtype and general),
//! * unit structs,
//! * enums with unit, tuple and struct variants.
//!
//! `#[serde(...)]` attributes are not supported (the workspace uses
//! none); generics are not supported. Generated code follows serde's
//! JSON conventions: structs → objects, newtype structs unwrap, unit
//! variants → strings, data variants → single-key objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Input {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip outer attributes (`#[...]`) and visibility (`pub`,
/// `pub(crate)`, …) at the current position.
fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The [...] group of the attribute.
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Count top-level comma-separated items in a token sequence, tracking
/// `<...>` nesting so generic arguments don't split fields.
fn count_tuple_fields(tokens: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for tt in tokens {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        fields += 1;
    }
    fields
}

/// Extract the field names of a named-field body (the tokens inside
/// `{ ... }`).
fn parse_named_fields(tokens: TokenStream) -> Vec<String> {
    let mut iter = tokens.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("expected field name, got {tt}");
        };
        names.push(name.to_string());
        // Consume `:` then the type tokens up to a top-level comma.
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        let mut depth = 0i32;
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    names
}

fn parse_variants(tokens: TokenStream) -> Vec<Variant> {
    let mut iter = tokens.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("expected variant name, got {tt}");
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                iter.next();
                Shape::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                iter.next();
                Shape::Named(parse_named_fields(g))
            }
            _ => Shape::Unit,
        };
        variants.push(Variant {
            name: name.to_string(),
            shape,
        });
        // Consume the trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic types ({name})");
        }
    }
    match keyword.as_str() {
        "struct" => {
            let shape = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("unexpected struct body for {name}: {other:?}"),
            };
            Input::Struct { name, shape }
        }
        "enum" => {
            let variants = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("unexpected enum body for {name}: {other:?}"),
            };
            Input::Enum { name, variants }
        }
        other => panic!("expected `struct` or `enum`, got `{other}`"),
    }
}

fn emit(src: String) -> TokenStream {
    src.parse().expect("generated impl parses")
}

// ---------------------------------------------------------------- Serialize

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_input(input) {
        Input::Struct { name, shape } => {
            let expr = match shape {
                Shape::Unit => "::serde::Value::Null".to_owned(),
                Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_owned(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => {
                    let pushes: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(String::from(\"{f}\"), ::serde::Serialize::serialize(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", pushes.join(", "))
                }
            };
            format!(
                "#[automatically_derived]\n\
                 #[allow(warnings, clippy::all, clippy::pedantic)]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{ {expr} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Serialize::serialize(__f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::serialize(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "(String::from(\"{f}\"), ::serde::Serialize::serialize({f}))"
                                ))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Object(vec![{}]))]),",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 #[allow(warnings, clippy::all, clippy::pedantic)]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    emit(body)
}

// -------------------------------------------------------------- Deserialize

fn named_fields_ctor(ty_path: &str, ty_label: &str, obj_var: &str, fields: &[String]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match ::serde::find_field({obj_var}, \"{f}\") {{\n\
                     Some(__field) => ::serde::Deserialize::deserialize(__field)?,\n\
                     None => ::serde::Deserialize::deserialize(&::serde::Value::Null)\n\
                         .map_err(|_| ::serde::DeError::missing_field(\"{f}\", \"{ty_label}\"))?,\n\
                 }},"
            )
        })
        .collect();
    format!("{ty_path} {{\n{}\n}}", inits.join("\n"))
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_input(input) {
        Input::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"
                ),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Deserialize::deserialize(&__arr[{i}])?"))
                        .collect();
                    format!(
                        "let __arr = __v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", __v))?;\n\
                         if __arr.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::new(format!(\n\
                                 \"expected {n} elements for {name}, got {{}}\", __arr.len())));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let ctor = named_fields_ctor(&name, &name, "__obj", &fields);
                    format!(
                        "let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", __v))?;\n\
                         ::std::result::Result::Ok({ctor})"
                    )
                }
            };
            format!(
                "#[automatically_derived]\n\
                 #[allow(warnings, clippy::all, clippy::pedantic)]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(__val)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::deserialize(&__arr[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __arr = __val.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", __val))?;\n\
                                     if __arr.len() != {n} {{\n\
                                         return ::std::result::Result::Err(::serde::DeError::new(format!(\n\
                                             \"expected {n} elements for {name}::{vn}, got {{}}\", __arr.len())));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }},",
                                items.join(", ")
                            ))
                        }
                        Shape::Named(fields) => {
                            let ctor = named_fields_ctor(
                                &format!("{name}::{vn}"),
                                &format!("{name}::{vn}"),
                                "__vobj",
                                fields,
                            );
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __vobj = __val.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", __val))?;\n\
                                     ::std::result::Result::Ok({ctor})\n\
                                 }},"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 #[allow(warnings, clippy::all, clippy::pedantic)]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::new(\n\
                                     format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                                 let (__k, __val) = &__pairs[0];\n\
                                 match __k.as_str() {{\n\
                                     {data}\n\
                                     __other => ::std::result::Result::Err(::serde::DeError::new(\n\
                                         format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                                 }}\n\
                             }},\n\
                             __other => ::std::result::Result::Err(::serde::DeError::expected(\"{name} variant\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    emit(body)
}
