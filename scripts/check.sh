#!/usr/bin/env bash
# Full pre-merge gate: release build, the whole test suite, and a
# warning-free clippy pass. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."
