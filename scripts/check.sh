#!/usr/bin/env bash
# Full pre-merge gate: format check, release build, the whole test
# suite (with the observability tests called out explicitly), and a
# warning-free clippy pass. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

# Opt-in extras: --bench reruns the solver/sweep benches in a scratch
# directory and diffs them against the committed BENCH_*.json
# baselines with bench_compare (fails on wall-clock or correctness
# regression). --chaos runs the robustness smoke gate: the resilient
# sweep runner under deterministic fault injection (zero lost points,
# bit-identical kill/resume, guards-disabled overhead parity).
# --report runs the run-ledger smoke gate: two quick bin runs must
# leave two well-formed manifests, supernpu_report must aggregate them
# cleanly, and a synthetic slowdown must come out flagged REGRESSION.
RUN_BENCH=0
RUN_CHAOS=0
RUN_REPORT=0
for arg in "$@"; do
    case "$arg" in
        --bench) RUN_BENCH=1 ;;
        --chaos) RUN_CHAOS=1 ;;
        --report) RUN_REPORT=1 ;;
        *) echo "usage: $0 [--bench] [--chaos] [--report]" >&2; exit 2 ;;
    esac
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== cargo fmt --all -- --check =="
cargo fmt --all -- --check

echo "== cargo build --release --workspace =="
cargo build --release --workspace

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo test -q -p sfq-obs =="
cargo test -q -p sfq-obs

echo "== cargo test -q --test observability =="
cargo test -q --test observability

echo "== cargo test -q --test tracing =="
# Includes the disabled-path check: with SUPERNPU_TRACE unset the
# trace helpers must register no sinks and record no events.
cargo test -q --test tracing

echo "== cargo test -q --test profiling =="
# Includes the disabled-path check: with SUPERNPU_PROFILE unset the
# profiler helpers must register no thread trees and record nothing,
# and the fig20 sweep must be bit-identical with profiling on.
cargo test -q --test profiling

echo "== profiling smoke gate =="
# Tiny profiled workload: the collapsed-stack export must be non-empty
# and the kernel report must re-parse through the bench gate (a
# self-compare). profile_report itself exits nonzero unless the
# disabled path recorded zero frames before the profiler was enabled.
cargo build --release -p supernpu-bench \
    --bin profile_report --bin bench_compare --bin bench_batch
target/release/profile_report --smoke \
    --out "$tmp/profile.json" --bench-out "$tmp/BENCH_profile.json" >/dev/null
test -s "$tmp/profile.folded" || { echo "profiling smoke: empty profile.folded" >&2; exit 1; }
target/release/bench_compare \
    --baseline "$tmp/BENCH_profile.json" --fresh "$tmp/BENCH_profile.json" >/dev/null

echo "== batch smoke gate =="
# Shrunken batched-vs-scalar run: outcome identity and pulse-time
# equivalence are hard-checked inside bench_batch (the speedup floor
# only binds on full runs); the emitted report must re-parse through
# the bench gate (a self-compare).
target/release/bench_batch --smoke --out "$tmp/BENCH_batch.json" >/dev/null
target/release/bench_compare \
    --baseline "$tmp/BENCH_batch.json" --fresh "$tmp/BENCH_batch.json" >/dev/null

echo "== batch SIMD codegen check =="
# The lane LU factor kernel must compile to packed SSE arithmetic on
# x86_64 release builds — the whole point of the [f64; LANES] layout.
# Skipped where objdump is missing or the target is not x86_64.
if command -v objdump >/dev/null && [[ "$(uname -m)" == "x86_64" ]]; then
    # (awk must read to EOF — an early exit would SIGPIPE objdump
    # under `set -o pipefail`.)
    factor_asm="$(objdump -d target/release/bench_batch \
        | awk '/<.*factor_banded_packed_lanes.*>:/{f=1} f&&/^$/{f=0} f{print}')"
    if [[ -z "$factor_asm" ]]; then
        echo "batch SIMD check: factor_banded_packed_lanes symbol not found" >&2
        exit 1
    fi
    if ! grep -Eq 'mulpd|subpd|divpd|vfmadd.*pd' <<<"$factor_asm"; then
        echo "batch SIMD check: no packed double ops in factor_banded_packed_lanes" >&2
        exit 1
    fi
else
    echo "(skipped: objdump or x86_64 unavailable)"
fi

echo "== trace example end-to-end =="
# The example writes a Chrome trace and exits nonzero unless the file
# re-parses with every required field and track family present.
SUPERNPU_TRACE="$tmp/trace.json" cargo run --release --example trace

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy (library unwrap/expect gate) =="
# Library code must not unwrap/expect on fallible paths: failures are
# typed (SimError, ConfigError, FaultError) or explicit panics with a
# documented invariant. Tests, benches and the experiment binaries are
# exempt (--lib only checks library targets).
cargo clippy --workspace --lib -- -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "== cargo clippy (bench-binary unwrap/expect gate) =="
# The experiment binaries held the last bare unwraps on I/O paths;
# they now route through report::{die, write_report}, and this gate
# keeps it that way.
cargo clippy -p supernpu-bench --bins -- -D warnings -D clippy::unwrap_used -D clippy::expect_used

if [[ $RUN_CHAOS -eq 1 ]]; then
    echo "== chaos smoke gate (--chaos) =="
    # Shrunken robustness run: chaos-injected panics/timeouts/stalls
    # must leave zero lost points, a cancelled sweep must resume
    # bit-identically from its atomic checkpoint, and the unguarded
    # resilient path must match the plain sweep. bench_robust itself
    # exits nonzero on any violated invariant; the emitted report must
    # re-parse through the bench gate (a self-compare).
    cargo build --release -p supernpu-bench --bin bench_robust --bin bench_compare
    repo="$(pwd)"
    (cd "$tmp" && "$repo/target/release/bench_robust" --smoke >/dev/null)
    target/release/bench_compare \
        --baseline "$tmp/BENCH_robust.json" --fresh "$tmp/BENCH_robust.json" >/dev/null
fi

if [[ $RUN_REPORT -eq 1 ]]; then
    echo "== run-ledger smoke gate (--report) =="
    # Two quick runs of the same bin against a scratch ledger must
    # leave two well-formed manifests plus two jsonl lines, and
    # supernpu_report must join them into a trend group. Then a
    # synthetic two-run fixture with a huge slowdown must come out
    # flagged with the literal REGRESSION marker.
    cargo build --release -p supernpu-bench --bin table1_setup --bin supernpu_report
    repo="$(pwd)"
    ledger="$tmp/ledger"
    (cd "$tmp" && SUPERNPU_LEDGER="$ledger" "$repo/target/release/table1_setup" >/dev/null)
    (cd "$tmp" && SUPERNPU_LEDGER="$ledger" "$repo/target/release/table1_setup" >/dev/null)
    manifests="$(find "$ledger" -name 'table1_setup-*.json' | wc -l)"
    if [[ "$manifests" -ne 2 ]]; then
        echo "ledger smoke: expected 2 manifests, found $manifests" >&2
        exit 1
    fi
    lines="$(wc -l < "$ledger/ledger.jsonl")"
    if [[ "$lines" -ne 2 ]]; then
        echo "ledger smoke: expected 2 ledger.jsonl lines, found $lines" >&2
        exit 1
    fi
    target/release/supernpu_report --ledger "$ledger" --out "$tmp" >/dev/null
    grep -q 'table1_setup' "$tmp/report.md" || {
        echo "ledger smoke: report.md has no table1_setup trend" >&2
        exit 1
    }
    # Synthetic regression: same bin and knobs, 100 ms -> 60000 ms.
    mkdir -p "$tmp/regress"
    for run in '1, "duration_ms": 100.0' '2, "duration_ms": 60000.0'; do
        printf '%s\n' "{\"schema_version\": 1, \"bin\": \"slow_bin\", \"seq\": ${run}, \
\"args\": [], \"env\": [], \"threads\": 1, \"chunk\": 0, \"lanes\": 4, \"seeds\": [], \
\"cargo_profile\": \"release\", \"target\": \"x86_64-linux\", \"outcome\": \"Ok\", \
\"cache_hits\": 0, \"cache_misses\": 0, \"artifacts\": []}" >> "$tmp/regress/ledger.jsonl"
    done
    target/release/supernpu_report \
        --ledger "$tmp/regress" --out "$tmp/regress" --bench-dir "$tmp/regress" >/dev/null
    grep -q 'REGRESSION' "$tmp/regress/report.md" || {
        echo "ledger smoke: synthetic slowdown not flagged REGRESSION" >&2
        exit 1
    }
fi

if [[ $RUN_BENCH -eq 1 ]]; then
    echo "== bench-regression gate (--bench) =="
    cargo build --release -p supernpu-bench \
        --bin bench_solver --bin bench_sweeps --bin bench_compare --bin profile_report \
        --bin bench_batch --bin bench_robust
    repo="$(pwd)"
    (cd "$tmp" && "$repo/target/release/bench_solver" >/dev/null)
    # --points adds the granularity stress sweep: 1e5 synthetic design
    # points over a thread ladder. bench_sweeps itself hard-fails if
    # any rung's output diverges from serial or its speedup misses
    # 0.8x the effective core count; bench_compare re-checks the
    # recorded rungs against the committed baseline.
    (cd "$tmp" && "$repo/target/release/bench_sweeps" --points 100000 >/dev/null)
    target/release/bench_compare \
        --baseline BENCH_solver.json --fresh "$tmp/BENCH_solver.json"
    target/release/bench_compare \
        --baseline BENCH_sweeps.json --fresh "$tmp/BENCH_sweeps.json"
    # Full profiled workload: enforces the >=90% solver-kernel
    # self-time coverage floor and diffs kernel self-times against the
    # committed baseline.
    target/release/profile_report \
        --out "$tmp/profile_full.json" --bench-out "$tmp/BENCH_profile.json" >/dev/null
    target/release/bench_compare \
        --baseline BENCH_profile.json --fresh "$tmp/BENCH_profile.json"
    # Full batched-vs-scalar run: bench_batch itself hard-fails if the
    # yield workload's SIMD speedup misses its recorded floor or any
    # outcome diverges from the scalar path; bench_compare re-checks
    # against the committed baseline.
    (cd "$tmp" && "$repo/target/release/bench_batch" >/dev/null)
    target/release/bench_compare \
        --baseline BENCH_batch.json --fresh "$tmp/BENCH_batch.json"
    # Full robustness run: bench_robust hard-fails internally on any
    # lost point, non-identical resume, or guards-disabled overhead
    # beyond budget; bench_compare re-checks against the committed
    # baseline.
    (cd "$tmp" && "$repo/target/release/bench_robust" >/dev/null)
    target/release/bench_compare \
        --baseline BENCH_robust.json --fresh "$tmp/BENCH_robust.json"
fi

echo "All checks passed."
