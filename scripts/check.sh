#!/usr/bin/env bash
# Full pre-merge gate: format check, release build, the whole test
# suite (with the observability tests called out explicitly), and a
# warning-free clippy pass. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --all -- --check =="
cargo fmt --all -- --check

echo "== cargo build --release --workspace =="
cargo build --release --workspace

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo test -q -p sfq-obs =="
cargo test -q -p sfq-obs

echo "== cargo test -q --test observability =="
cargo test -q --test observability

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy (library unwrap/expect gate) =="
# Library code must not unwrap/expect on fallible paths: failures are
# typed (SimError, ConfigError, FaultError) or explicit panics with a
# documented invariant. Tests, benches and the experiment binaries are
# exempt (--lib only checks library targets).
cargo clippy --workspace --lib -- -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "All checks passed."
